//! Parallel sweep execution.
//!
//! [`run_sweep`] expands a [`SweepSpec`], serves what it can from the result
//! cache, fans the remaining points out across a rayon-style thread pool, and
//! returns records in the spec's deterministic expansion order — so output
//! files are byte-identical whether the sweep ran on one thread or many
//! (`RAYON_NUM_THREADS` controls the pool size).

use rayon::prelude::*;

use simphony::{Accelerator, MappingPlan, Result as SimResult, SimulationReport, Simulator};

use crate::cache::{CacheStats, SimCache};
use crate::error::{ExploreError, Result};
use crate::record::SweepRecord;
use crate::spec::{SweepPoint, SweepSpec};

/// The result of one sweep: ordered records plus cache accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One record per expanded point, in expansion order.
    pub records: Vec<SweepRecord>,
    /// How many points were served from the cache vs simulated.
    pub stats: CacheStats,
}

/// Simulates one fully-bound configuration.
///
/// # Errors
///
/// Propagates architecture-generation, workload-extraction and simulation
/// errors.
pub fn simulate_point(point: &SweepPoint) -> SimResult<SimulationReport> {
    let arch = point.arch.generate(point.arch_params(), point.clock_ghz)?;
    let accel = Accelerator::builder(format!("{}_sweep", point.arch))
        .sub_arch(arch)
        .build()?;
    let workload = point.workload.extract(
        simphony_units::BitWidth::new(point.bits),
        point.sparsity,
        point.seed,
    )?;
    Simulator::new(accel)
        .with_config(point.sim_config())
        .simulate(&workload, &MappingPlan::default())
}

fn record_point(point: &SweepPoint) -> Result<SweepRecord> {
    let report = simulate_point(point).map_err(|source| ExploreError::Point {
        index: point.index,
        label: point.label(),
        source,
    })?;
    Ok(SweepRecord::from_report(point.clone(), &report))
}

/// Runs a sweep, optionally backed by a result cache.
///
/// # Errors
///
/// Returns the first failing point's error (points are still attempted in
/// parallel; failures abort the sweep rather than producing partial files),
/// or a spec-validation/cache I/O error. Points that simulated successfully
/// are cached even when another point fails, so a retry after fixing the
/// spec only re-runs what actually needs running.
pub fn run_sweep(spec: &SweepSpec, cache: Option<&SimCache>) -> Result<SweepOutcome> {
    let points = spec.expand()?;

    // Serve cache hits first; only misses go to the thread pool.
    let mut slots: Vec<Option<SweepRecord>> = Vec::with_capacity(points.len());
    let mut misses: Vec<SweepPoint> = Vec::new();
    for point in &points {
        match cache.and_then(|c| c.get(point)) {
            Some(record) => slots.push(Some(record)),
            None => {
                slots.push(None);
                misses.push(point.clone());
            }
        }
    }
    let stats = CacheStats {
        hits: points.len() - misses.len(),
        misses: misses.len(),
    };

    let computed: Vec<Result<SweepRecord>> = misses.par_iter().map(record_point).collect();

    let mut fresh = Vec::with_capacity(computed.len());
    let mut first_error = None;
    for result in computed {
        match result {
            Ok(record) => {
                if let Some(cache) = cache {
                    cache.put(&record)?;
                }
                fresh.push(record);
            }
            Err(err) => first_error = first_error.or(Some(err)),
        }
    }
    if let Some(err) = first_error {
        return Err(err);
    }

    let mut fresh_iter = fresh.into_iter();
    let records: Vec<SweepRecord> = slots
        .into_iter()
        .map(|slot| match slot {
            Some(record) => record,
            None => fresh_iter
                .next()
                .expect("one computed record per cache miss"),
        })
        .collect();
    debug_assert!(fresh_iter.next().is_none());

    Ok(SweepOutcome { records, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ArchFamily;

    #[test]
    fn single_point_sweep_matches_direct_simulation() {
        let spec = SweepSpec::new("one");
        let outcome = run_sweep(&spec, None).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.stats, CacheStats { hits: 0, misses: 1 });
        let direct = simulate_point(&spec.expand().unwrap()[0]).unwrap();
        let record = &outcome.records[0];
        assert_eq!(record.cycles, direct.total_cycles);
        assert_eq!(record.energy_uj, direct.total_energy.microjoules());
        assert_eq!(record.glb_blocks, direct.glb_blocks);
    }

    #[test]
    fn successful_points_are_cached_even_when_the_sweep_fails() {
        let dir =
            std::env::temp_dir().join(format!("simphony-explore-partial-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = SimCache::open(&dir).unwrap();
        // TeMPO can run BERT's dynamic products, the static MZI mesh cannot,
        // so the sweep fails after the TeMPO point simulated successfully.
        let spec = SweepSpec::new("partial")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::MziMesh])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 8 }]);
        assert!(run_sweep(&spec, Some(&cache)).is_err());
        assert_eq!(cache.len().unwrap(), 1, "good point must be cached");

        let retry = SweepSpec::new("partial-retry")
            .with_arch(vec![ArchFamily::Tempo])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 8 }]);
        let outcome = run_sweep(&retry, Some(&cache)).unwrap();
        assert_eq!(outcome.stats, CacheStats { hits: 1, misses: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_points_abort_with_context() {
        // A static-only MZI mesh cannot execute BERT's dynamic attention
        // products, so every point fails placement.
        let spec = SweepSpec::new("fail")
            .with_arch(vec![ArchFamily::MziMesh])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 32 }]);
        let err = run_sweep(&spec, None).unwrap_err();
        match err {
            ExploreError::Point { index, label, .. } => {
                assert_eq!(index, 0);
                assert!(label.contains("mzi_mesh"));
            }
            other => panic!("expected point error, got {other}"),
        }
    }
}
