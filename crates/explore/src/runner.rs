//! Streaming, sharded sweep execution with intra-sweep artifact sharing and
//! a two-stage compute/I-O pipeline.
//!
//! The engine walks a [`SweepSpec`]'s expansion lazily (no full point `Vec`
//! is ever materialized), in configurable shards. Each shard runs through two
//! stages:
//!
//! * the **compute stage** expands the shard's points, looks the whole batch
//!   up in the result cache at once ([`CacheBackend::get_batch`], parallel by
//!   default), groups the misses by their *artifact identities*
//!   ([`SweepPoint::workload_key`] and [`SweepPoint::arch_key`]), extracts
//!   each distinct workload and generates each distinct accelerator once
//!   (reusing `Arc`s still live from the previous shard), simulates the
//!   misses on a rayon-style thread pool, and renders each fresh record's
//!   cache entry to JSON *on the worker threads*;
//! * the **I/O stage** persists the completed shard with the durability
//!   contract intact — cache writes and flush, then sink emission (in
//!   deterministic expansion order) and flush, then the checkpoint append.
//!
//! By default (see [`StreamOptions::pipelined`]) the two stages overlap:
//! computed shards flow through a bounded single-slot channel to a dedicated
//! writer thread, so shard N+1 simulates while shard N persists and the
//! thread pool never idles during a durability window. `--no-pipeline` (or
//! [`pipelined(false)`](crate::ExploreSession::pipelined)) reverts to strict
//! alternation; both paths run the same two stage functions, so their outputs
//! are byte-identical. A fig9-style sweep whose 64 points share 4 distinct
//! workloads pays for 4 extractions, not 64 — and a million-point sweep holds
//! a few shards of points (plus their distinct artifacts) in memory, not the
//! whole expansion.
//!
//! The public entry point is the [`ExploreSession`](crate::ExploreSession)
//! builder.
//!
//! Failure handling is governed by [`ErrorPolicy`]:
//!
//! * [`ErrorPolicy::FailFast`] (the default) finishes the failing shard — so
//!   every success in it is cached — then returns the first failing point's
//!   error in expansion order;
//! * [`ErrorPolicy::KeepGoing`] records each failure as a [`PointFailure`] in
//!   the [`StreamOutcome`] and keeps simulating. Combined with the cache (and
//!   a [checkpoint](crate::Checkpoint), which also remembers the *failures*)
//!   this makes interrupted or partially-failing sweeps resumable: re-running
//!   the same spec skips completed shards, replays known-bad points without
//!   re-attempting them, and only simulates what never finished.
//!
//! Records are emitted in the spec's deterministic expansion order — output
//! files are byte-identical whether the sweep ran on one thread or many
//! (`RAYON_NUM_THREADS` controls the pool size), in one shard or thousands,
//! with any [`CacheBackend`], and artifact sharing does not change a single
//! output bit versus per-point extraction (extraction and generation are pure
//! functions of the key).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::{mpsc, Arc};

use rayon::prelude::*;

use simphony::{
    Accelerator, MappingPlan, Result as SimResult, SimError, SimulationReport, Simulator,
};
use simphony_onn::ModelWorkload;
use simphony_units::BitWidth;

use crate::cache::{content_key, CacheBackend, CacheStats};
use crate::checkpoint::{Checkpoint, CheckpointFailure, ShardCheckpoint};
use crate::error::{ExploreError, Result};
use crate::record::SweepRecord;
use crate::retry::RetryPolicy;
use crate::sink::RecordSink;
use crate::spec::{ArchKey, SweepPoint, SweepSpec, WorkloadKey};

/// The result of one in-memory sweep: ordered records plus cache accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One record per expanded point, in expansion order.
    pub records: Vec<SweepRecord>,
    /// How many points were served from the cache vs simulated.
    pub stats: CacheStats,
}

/// How the streaming executor reacts to a failing point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Finish the failing shard (so its successes are cached), then abort the
    /// sweep with the first failing point's error in expansion order.
    #[default]
    FailFast,
    /// Record every failure as a [`PointFailure`] in the outcome and keep
    /// simulating; successful points still stream to the sink and the cache,
    /// so a re-run after fixing the problem resumes instead of restarting.
    KeepGoing,
}

/// Tuning knobs of the streaming executor (see
/// [`ExploreSession`](crate::ExploreSession)).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamOptions {
    /// Points per shard; `None` (or `Some(0)`) runs the whole sweep as one
    /// shard. Smaller shards bound memory and flush durable sinks more often
    /// at the cost of more frequent artifact-store refreshes.
    pub chunk_size: Option<usize>,
    /// Failure handling (fail-fast by default).
    pub error_policy: ErrorPolicy,
    /// Whether to overlap the compute stage with the durability I/O stage on
    /// a dedicated writer thread (settable via
    /// [`pipelined`](method@Self::pipelined)). `None` (the default) decides
    /// automatically:
    /// pipelined whenever more than one shard remains to execute — with a
    /// single shard there is nothing to overlap. Output is byte-identical
    /// either way; `Some(false)` is the escape hatch (`--no-pipeline`).
    pub pipelined: Option<bool>,
    /// Retry policy for the durability chain (cache `put`/`flush`, sink
    /// flushes). [`RetryPolicy::none`] — one attempt per operation — by
    /// default.
    pub retry: RetryPolicy,
}

impl StreamOptions {
    /// One shard, fail-fast — the engine's defaults.
    pub fn unchunked() -> Self {
        Self::default()
    }

    /// Shards of `chunk_size` points (0 means unchunked).
    #[must_use]
    pub fn chunked(chunk_size: usize) -> Self {
        Self {
            chunk_size: (chunk_size > 0).then_some(chunk_size),
            ..Self::default()
        }
    }

    /// Switches to [`ErrorPolicy::KeepGoing`].
    #[must_use]
    pub fn keep_going(mut self) -> Self {
        self.error_policy = ErrorPolicy::KeepGoing;
        self
    }

    /// Forces the executor pipeline on or off (see
    /// [`pipelined`](field@Self::pipelined)).
    #[must_use]
    pub fn pipelined(mut self, enabled: bool) -> Self {
        self.pipelined = Some(enabled);
        self
    }

    /// Sets the durability-chain retry policy.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }
}

/// The effective points-per-shard a sweep of `total` points runs with:
/// [`chunk_size`](StreamOptions::chunk_size) when set and non-zero, else one
/// shard spanning the whole expansion. Public so out-of-crate executors
/// (e.g. a distributed coordinator) derive the exact shard geometry the
/// in-process executors use.
pub fn effective_shard_size(options: &StreamOptions, total: usize) -> usize {
    match options.chunk_size {
        Some(size) if size > 0 => size,
        _ => total.max(1),
    }
}

/// Why a point failed: a live simulator error from this run, or a failure
/// replayed from a [checkpoint](crate::Checkpoint) of an earlier run (which
/// is reported but never re-attempted).
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// The simulator error, from this run.
    Sim(SimError),
    /// The rendered message of a failure recorded by an earlier run's
    /// checkpoint.
    Recorded(String),
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Sim(e) => e.fmt(f),
            FailureCause::Recorded(msg) => f.write_str(msg),
        }
    }
}

/// One failing point of a [`ErrorPolicy::KeepGoing`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// Zero-based index of the point in deterministic expansion order.
    pub index: usize,
    /// Human-readable description of the failing configuration.
    pub label: String,
    /// The underlying cause (live simulator error, or replayed checkpoint
    /// record).
    pub error: FailureCause,
}

/// Progress snapshot passed to the progress callback after each shard
/// completes (or is skipped via checkpoint resume).
#[derive(Debug, Clone, Copy)]
pub struct ShardProgress {
    /// Zero-based index of the shard that just completed.
    pub shard: usize,
    /// Total number of shards in the sweep.
    pub shards: usize,
    /// Points in this shard.
    pub points: usize,
    /// Cache hits in this shard.
    pub hits: usize,
    /// Failed points in this shard (including failures replayed from a
    /// checkpoint).
    pub failures: usize,
    /// Points skipped because a checkpoint already records this shard as
    /// complete (0 for a freshly-executed shard, equal to `points` for a
    /// skipped one).
    pub skipped: usize,
    /// Cumulative points processed so far (including this shard).
    pub done: usize,
    /// Total points in the sweep.
    pub total: usize,
}

/// The result of one streaming sweep. Records went to the sink; this carries
/// the accounting.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// How many points were served from the cache vs attempted. Points
    /// skipped via checkpoint resume appear in neither counter.
    pub stats: CacheStats,
    /// Every failing point, in expansion order — both failures from this run
    /// and failures replayed from the checkpoint (the first
    /// [`replayed_failures`](Self::replayed_failures) entries). Always empty
    /// on a fully successful sweep; under [`ErrorPolicy::FailFast`] a *live*
    /// failure is returned as the sweep's error instead, but replayed
    /// failures are still reported here without aborting.
    pub failures: Vec<PointFailure>,
    /// How many of [`failures`](Self::failures) were replayed from the
    /// checkpoint rather than attempted in this run.
    pub replayed_failures: usize,
    /// Number of shards the sweep ran as.
    pub shards: usize,
    /// Total points in the expansion.
    pub total_points: usize,
    /// Points skipped because the checkpoint already recorded their shard as
    /// complete.
    pub skipped_points: usize,
    /// Cache writes that exhausted their [`RetryPolicy`] under
    /// [`ErrorPolicy::KeepGoing`] and were skipped in this run: the records
    /// still reached the sink, only their cache copies are missing (a re-run
    /// re-simulates those points). Always 0 under the default no-retry,
    /// fail-fast configuration.
    pub cache_degraded: usize,
}

/// Builds the accelerator a sweep point describes.
///
/// Public so downstream crates (the `simphony-traffic` serving simulator)
/// can build one accelerator per fleet template and share it behind an `Arc`
/// across service-table probes, exactly as the streaming executor shares
/// artifacts within a shard.
///
/// # Errors
///
/// Propagates architecture-generation errors.
pub fn build_accelerator(point: &SweepPoint) -> SimResult<Accelerator> {
    let arch = point.arch.generate(point.arch_params(), point.clock_ghz)?;
    Accelerator::builder(format!("{}_sweep", point.arch))
        .sub_arch(arch)
        .build()
}

/// Extracts the workload a sweep point describes.
///
/// Public for the same artifact-sharing reason as [`build_accelerator`].
///
/// # Errors
///
/// Propagates workload-extraction errors.
pub fn extract_workload(point: &SweepPoint) -> SimResult<ModelWorkload> {
    point
        .workload
        .extract(BitWidth::new(point.bits), point.sparsity, point.seed)
}

/// Simulates one fully-bound configuration, extracting its artifacts from
/// scratch.
///
/// This is the sharing-free path (the streaming executor amortizes artifacts
/// across a shard instead); it exists for single-point callers like
/// `simphony-cli run` and produces bit-identical reports to the shared path.
///
/// # Errors
///
/// Propagates architecture-generation, workload-extraction and simulation
/// errors.
pub fn simulate_point(point: &SweepPoint) -> SimResult<SimulationReport> {
    let accel = build_accelerator(point)?;
    let workload = extract_workload(point)?;
    simulate_point_with(point, &Arc::new(accel), &workload)
}

/// Simulates a point against pre-built (possibly shared) artifacts.
///
/// Produces bit-identical reports to [`simulate_point`]; public so callers
/// probing many configurations against one accelerator (the serving
/// simulator's service tables) pay artifact construction once.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_point_with(
    point: &SweepPoint,
    accel: &Arc<Accelerator>,
    workload: &ModelWorkload,
) -> SimResult<SimulationReport> {
    Simulator::shared(Arc::clone(accel))
        .with_config(point.sim_config())
        .simulate(workload, &MappingPlan::default())
}

/// Default entry cap of a session-local [`ArtifactStore`].
const DEFAULT_ARTIFACT_ENTRIES: usize = 256;

/// Default byte budget of a session-local [`ArtifactStore`] (512 MiB of
/// estimated artifact memory).
const DEFAULT_ARTIFACT_BYTES: u64 = 512 * 1024 * 1024;

/// Capacity limits of an [`ArtifactStore`]. `0` in either field means that
/// dimension is unlimited; the default bounds a store to
/// 256 entries / 512 MiB, so a long sweep (or a long-lived server) cannot
/// accumulate every workload it ever touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactBudget {
    /// Maximum resident artifacts (workloads + accelerators); 0 = unlimited.
    pub max_entries: usize,
    /// Maximum estimated resident bytes; 0 = unlimited.
    pub max_bytes: u64,
}

impl Default for ArtifactBudget {
    fn default() -> Self {
        Self {
            max_entries: DEFAULT_ARTIFACT_ENTRIES,
            max_bytes: DEFAULT_ARTIFACT_BYTES,
        }
    }
}

impl ArtifactBudget {
    /// No limits — the pre-budget behaviour, for callers that manage store
    /// lifetime themselves.
    pub fn unbounded() -> Self {
        Self {
            max_entries: 0,
            max_bytes: 0,
        }
    }
}

/// Usage counters of an [`ArtifactStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactStoreStats {
    /// Artifacts currently resident (workloads + accelerators).
    pub entries: usize,
    /// Estimated bytes of resident artifact data.
    pub bytes: u64,
    /// Lookups served from the store since it was created.
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
    /// Artifacts evicted to stay within budget.
    pub evictions: u64,
}

/// One resident artifact with the accounting LRU eviction needs.
struct Resident<T> {
    value: Arc<T>,
    bytes: u64,
    last_used: u64,
}

/// A budgeted, LRU-evicting store of successfully-built sweep artifacts
/// (extracted workloads and generated accelerators), keyed by their content
/// identities ([`SweepPoint::workload_key`] / [`SweepPoint::arch_key`]).
///
/// The executor consults one store across every shard of a sweep, so
/// artifacts that stay live across shard boundaries are built once. Wrapped
/// in [`SharedArtifactStore`] the same store outlives individual sweeps —
/// this is what lets a resident server skip artifact construction entirely
/// on warm requests. Eviction is least-recently-used across both artifact
/// kinds; evicting never breaks an in-flight shard, which holds its own
/// `Arc` clones.
///
/// Failed builds are *not* stored: a failing key is re-attempted by the next
/// shard that needs it, keeping error attribution shard-local.
pub struct ArtifactStore {
    budget: ArtifactBudget,
    clock: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    workloads: HashMap<WorkloadKey, Resident<ModelWorkload>>,
    accelerators: HashMap<ArchKey, Resident<Accelerator>>,
}

/// A shareable handle to a resident [`ArtifactStore`]: clone it into every
/// [`ExploreSession`](crate::ExploreSession) (or server connection) that
/// should reuse the same hot artifacts.
pub type SharedArtifactStore = Arc<std::sync::Mutex<ArtifactStore>>;

impl Default for ArtifactStore {
    fn default() -> Self {
        Self::new(ArtifactBudget::default())
    }
}

impl ArtifactStore {
    /// An empty store enforcing `budget`.
    pub fn new(budget: ArtifactBudget) -> Self {
        Self {
            budget,
            clock: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            workloads: HashMap::new(),
            accelerators: HashMap::new(),
        }
    }

    /// An empty store behind a [`SharedArtifactStore`] handle.
    pub fn shared(budget: ArtifactBudget) -> SharedArtifactStore {
        Arc::new(std::sync::Mutex::new(Self::new(budget)))
    }

    /// Current residency and lifetime hit/miss/eviction counters.
    pub fn stats(&self) -> ArtifactStoreStats {
        ArtifactStoreStats {
            entries: self.workloads.len() + self.accelerators.len(),
            bytes: self.bytes,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    fn touch(clock: &mut u64) -> u64 {
        *clock += 1;
        *clock
    }

    fn lookup_workload(&mut self, key: &WorkloadKey) -> Option<Arc<ModelWorkload>> {
        match self.workloads.get_mut(key) {
            Some(entry) => {
                entry.last_used = Self::touch(&mut self.clock);
                self.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn lookup_accelerator(&mut self, key: &ArchKey) -> Option<Arc<Accelerator>> {
        match self.accelerators.get_mut(key) {
            Some(entry) => {
                entry.last_used = Self::touch(&mut self.clock);
                self.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert_workload(&mut self, key: WorkloadKey, value: Arc<ModelWorkload>) {
        let bytes = workload_bytes(&value);
        let last_used = Self::touch(&mut self.clock);
        if let Some(old) = self.workloads.insert(
            key,
            Resident {
                value,
                bytes,
                last_used,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.evict_to_budget();
    }

    fn insert_accelerator(&mut self, key: ArchKey, value: Arc<Accelerator>) {
        let bytes = accelerator_bytes(&value);
        let last_used = Self::touch(&mut self.clock);
        if let Some(old) = self.accelerators.insert(
            key,
            Resident {
                value,
                bytes,
                last_used,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.evict_to_budget();
    }

    /// Evicts least-recently-used artifacts (of either kind) until the store
    /// is back within budget. In-flight shards are unaffected — they hold
    /// their own `Arc`s — so eviction only costs a future rebuild.
    fn evict_to_budget(&mut self) {
        let over = |store: &Self| {
            let entries = store.workloads.len() + store.accelerators.len();
            (store.budget.max_entries > 0 && entries > store.budget.max_entries)
                || (store.budget.max_bytes > 0 && store.bytes > store.budget.max_bytes)
        };
        while over(self) {
            let oldest_workload = self
                .workloads
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (k.clone(), e.last_used));
            let oldest_accelerator = self
                .accelerators
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, e)| (k, e.last_used));
            match (oldest_workload, oldest_accelerator) {
                (Some((key, wl_used)), Some((_, acc_used))) if wl_used <= acc_used => {
                    let old = self.workloads.remove(&key).expect("key just observed");
                    self.bytes -= old.bytes;
                }
                (_, Some((key, _))) => {
                    let old = self.accelerators.remove(&key).expect("key just observed");
                    self.bytes -= old.bytes;
                }
                (Some((key, _)), None) => {
                    let old = self.workloads.remove(&key).expect("key just observed");
                    self.bytes -= old.bytes;
                }
                (None, None) => return,
            }
            self.evictions += 1;
        }
    }
}

/// Estimated resident size of an extracted workload: its weight tensors
/// dominate, so sum them plus a fixed per-layer overhead.
fn workload_bytes(workload: &ModelWorkload) -> u64 {
    let layers: u64 = workload
        .layers()
        .iter()
        .map(|layer| {
            (std::mem::size_of_val(layer.weight_values())
                + std::mem::size_of_val(layer.normalized_abs_values())) as u64
                + 256
        })
        .sum();
    layers + 256
}

/// Estimated resident size of a generated accelerator. Accelerators are
/// configuration trees without bulk arrays, so their serialized length is a
/// good (and cheap) proxy.
fn accelerator_bytes(accel: &Accelerator) -> u64 {
    serde_json::to_string(accel).map_or(4096, |json| json.len() as u64)
}

/// The distinct artifacts of one shard of sweep points, built once and shared
/// across the executor threads.
///
/// Construction is fallible *per key*, not per shard: a failing artifact is
/// recorded as that key's error and only fails the points that need it — the
/// rest of the shard still simulates (and caches), honouring the engine's
/// partial-progress contract.
#[derive(Default)]
pub(crate) struct ShardArtifacts {
    workloads: HashMap<WorkloadKey, std::result::Result<Arc<ModelWorkload>, SimError>>,
    accelerators: HashMap<ArchKey, std::result::Result<Arc<Accelerator>, SimError>>,
}

impl ShardArtifacts {
    /// Extracts/generates every distinct artifact of `points` (both kinds in
    /// parallel over their distinct keys). Artifacts already resident in
    /// `store` are reused via `Arc` clone instead of rebuilt; fresh successes
    /// are published back (subject to the store's budget), so artifacts that
    /// stay live across shard — or sweep — boundaries are only ever
    /// constructed once. The store lock is held only around the index
    /// consultation and the publish, never across the builds themselves.
    fn build(points: &[&SweepPoint], store: &std::sync::Mutex<ArtifactStore>) -> Self {
        let mut shard = ShardArtifacts::default();
        let mut workload_reps: Vec<&SweepPoint> = Vec::new();
        let mut arch_reps: Vec<&SweepPoint> = Vec::new();
        let mut workload_keys: HashSet<WorkloadKey> = HashSet::new();
        let mut arch_keys: HashSet<ArchKey> = HashSet::new();
        {
            let mut resident = store.lock().expect("artifact store lock");
            for &point in points {
                let workload_key = point.workload_key();
                if workload_keys.insert(workload_key.clone()) {
                    match resident.lookup_workload(&workload_key) {
                        Some(live) => {
                            shard.workloads.insert(workload_key, Ok(live));
                        }
                        None => workload_reps.push(point),
                    }
                }
                let arch_key = point.arch_key();
                if arch_keys.insert(arch_key) {
                    match resident.lookup_accelerator(&arch_key) {
                        Some(live) => {
                            shard.accelerators.insert(arch_key, Ok(live));
                        }
                        None => arch_reps.push(point),
                    }
                }
            }
        }

        let extracted: Vec<SimResult<ModelWorkload>> = workload_reps
            .par_iter()
            .map(|point| extract_workload(point))
            .collect();
        for (point, result) in workload_reps.iter().zip(extracted) {
            shard
                .workloads
                .insert(point.workload_key(), result.map(Arc::new));
        }

        let generated: Vec<SimResult<Accelerator>> = arch_reps
            .par_iter()
            .map(|point| build_accelerator(point))
            .collect();
        for (point, result) in arch_reps.iter().zip(generated) {
            shard
                .accelerators
                .insert(point.arch_key(), result.map(Arc::new));
        }

        // Publish fresh successes for the next shard (or the next request of
        // a resident server). Failures stay shard-local and are re-attempted
        // by whoever needs the key next.
        {
            let mut resident = store.lock().expect("artifact store lock");
            for point in &workload_reps {
                let key = point.workload_key();
                if let Some(Ok(value)) = shard.workloads.get(&key) {
                    resident.insert_workload(key, Arc::clone(value));
                }
            }
            for point in &arch_reps {
                let key = point.arch_key();
                if let Some(Ok(value)) = shard.accelerators.get(&key) {
                    resident.insert_accelerator(key, Arc::clone(value));
                }
            }
        }

        shard
    }

    fn simulate(&self, point: &SweepPoint) -> SimResult<SimulationReport> {
        let workload = self.workloads[&point.workload_key()]
            .as_ref()
            .map_err(SimError::clone)?;
        let accel = self.accelerators[&point.arch_key()]
            .as_ref()
            .map_err(SimError::clone)?;
        simulate_point_with(point, accel, workload)
    }
}

/// Simulates one fully-bound configuration through a resident
/// [`ArtifactStore`]: artifacts already resident are reused (and
/// LRU-touched); anything missing is built and published back. Produces
/// bit-identical reports to [`simulate_point`] — artifact construction is a
/// pure function of the point's keys — while a warm store skips it entirely.
///
/// # Errors
///
/// Propagates architecture-generation, workload-extraction and simulation
/// errors.
pub fn simulate_point_shared(
    store: &std::sync::Mutex<ArtifactStore>,
    point: &SweepPoint,
) -> SimResult<SimulationReport> {
    ShardArtifacts::build(&[point], store).simulate(point)
}

/// A record ready for the I/O stage. Fresh simulations carry their cache
/// entry pre-rendered (content key + compact JSON) so the writer thread
/// stores bytes instead of serializing; cache hits carry nothing — they are
/// already durable.
pub(crate) struct PreparedRecord {
    pub(crate) record: SweepRecord,
    pub(crate) cache_entry: Option<(String, String)>,
}

/// One shard's compute-stage output: everything the I/O stage needs to
/// persist it (records in expansion-order slots, the failures to checkpoint)
/// plus the counters progress reporting wants.
pub(crate) struct ComputedShard {
    pub(crate) shard: usize,
    pub(crate) points: usize,
    pub(crate) hits: usize,
    pub(crate) slots: Vec<Option<PreparedRecord>>,
    pub(crate) checkpoint_failures: Vec<CheckpointFailure>,
}

/// Runs one shard's compute stage: point expansion, batched (parallel) cache
/// lookups, artifact construction, parallel simulation, and record/cache-entry
/// serialization — everything up to, but not including, durability I/O.
/// `artifacts` is the resident store live artifacts flow through across shard
/// (and sweep) boundaries.
pub(crate) fn compute_shard(
    spec: &SweepSpec,
    cache: Option<&dyn CacheBackend>,
    shard: usize,
    start: usize,
    end: usize,
    artifacts: &std::sync::Mutex<ArtifactStore>,
) -> Result<(ComputedShard, Vec<PointFailure>)> {
    let shard_points = end - start;
    let mut points: Vec<Option<SweepPoint>> =
        (start..end).map(|i| Some(spec.point_at(i))).collect();

    // Serve cache hits first; only misses go to the artifact store and the
    // thread pool. The whole shard is looked up as one (parallel) batch.
    // Points sit in `Option` slots so a missed point can later be *moved*
    // into its record instead of cloned.
    let lookups: Vec<Option<SweepRecord>> = match cache {
        Some(cache) => {
            let queried: Vec<&SweepPoint> = points
                .iter()
                .map(|p| p.as_ref().expect("all points present before execution"))
                .collect();
            let lookups = cache.get_batch(&queried);
            // An out-of-contract override returning the wrong arity would
            // otherwise silently drop trailing points from the sweep.
            assert_eq!(
                lookups.len(),
                shard_points,
                "CacheBackend::get_batch must return one slot per queried point"
            );
            lookups
        }
        None => (0..shard_points).map(|_| None).collect(),
    };
    let mut slots: Vec<Option<PreparedRecord>> = Vec::with_capacity(shard_points);
    let mut miss_indices: Vec<usize> = Vec::new();
    for (slot, lookup) in lookups.into_iter().enumerate() {
        match lookup {
            Some(record) => slots.push(Some(PreparedRecord {
                record,
                cache_entry: None,
            })),
            None => {
                slots.push(None);
                miss_indices.push(slot);
            }
        }
    }
    let hits = shard_points - miss_indices.len();

    // A fully-warm shard is done: no artifacts to build, nothing to
    // simulate. (Skipping the empty plumbing below keeps the per-shard cost
    // of warm sweeps down to the lookups themselves — and the resident store
    // keeps whatever it holds, so a warm stretch in the middle of a sweep
    // never drops live artifacts.)
    if miss_indices.is_empty() {
        return Ok((
            ComputedShard {
                shard,
                points: shard_points,
                hits,
                slots,
                checkpoint_failures: Vec::new(),
            },
            Vec::new(),
        ));
    }

    // Missed points move out of their slots and into the worker threads,
    // which simulate, build the record around the point, and render the cache
    // entry — JSON encoding happens here, in parallel, never in the I/O
    // stage.
    let missed: Vec<SweepPoint> = miss_indices
        .iter()
        .map(|&slot| points[slot].take().expect("miss slot holds its point"))
        .collect();
    let shard_artifacts = {
        let missed_refs: Vec<&SweepPoint> = missed.iter().collect();
        ShardArtifacts::build(&missed_refs, artifacts)
    };
    type PointResult = std::result::Result<PreparedRecord, PointFailure>;
    let computed: Vec<Result<PointResult>> = missed
        .into_par_iter()
        .map(|point| match shard_artifacts.simulate(&point) {
            Ok(report) => {
                let record = SweepRecord::from_report(point, &report);
                let key = content_key(&record.point);
                let json = serde_json::to_string(&record)?;
                Ok(Ok(PreparedRecord {
                    record,
                    cache_entry: Some((key, json)),
                }))
            }
            Err(error) => Ok(Err(PointFailure {
                index: point.index,
                label: point.label(),
                error: FailureCause::Sim(error),
            })),
        })
        .collect();

    let mut checkpoint_failures: Vec<CheckpointFailure> = Vec::new();
    let mut failures: Vec<PointFailure> = Vec::new();
    for (&slot, result) in miss_indices.iter().zip(computed) {
        match result? {
            Ok(prepared) => slots[slot] = Some(prepared),
            Err(failure) => {
                checkpoint_failures.push(CheckpointFailure {
                    index: failure.index,
                    label: failure.label.clone(),
                    error: failure.error.to_string(),
                });
                failures.push(failure);
            }
        }
    }

    Ok((
        ComputedShard {
            shard,
            points: shard_points,
            hits,
            slots,
            checkpoint_failures,
        },
        failures,
    ))
}

/// Runs one shard's I/O stage with the durability contract intact: cache
/// writes (pre-rendered bytes), sink emission in expansion order (failed
/// points simply have no record), cache flush, sink flush — plus an fsync
/// when a checkpoint will vouch for the shard — then the checkpoint append,
/// in that order, so a checkpointed shard is always fully recoverable.
///
/// Cache writes and flushes run under `retry`; when one still fails after
/// the policy is exhausted, [`ErrorPolicy::KeepGoing`] degrades instead of
/// aborting — the record reaches the sink regardless (it was only the cache
/// copy that was lost; a re-run re-simulates that point) and the skip is
/// ledgered in the returned count and the shard's checkpoint line. Sink
/// errors stay hard under either policy: a sink that lost a record cannot
/// be reconciled after the fact.
///
/// Returns how many cache operations were degraded.
fn drain_shard(
    computed: ComputedShard,
    cache: Option<&dyn CacheBackend>,
    sink: &mut dyn RecordSink,
    checkpoint: &mut Option<&mut Checkpoint>,
    emitted: &mut usize,
    policy: ErrorPolicy,
    retry: RetryPolicy,
) -> Result<usize> {
    let ComputedShard {
        shard,
        points,
        hits,
        slots,
        checkpoint_failures,
    } = computed;
    let mut cache_degraded = 0usize;
    let mut degrade = |result: Result<()>| -> Result<()> {
        match result {
            Ok(()) => Ok(()),
            Err(_) if policy == ErrorPolicy::KeepGoing => {
                cache_degraded += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    };
    if let Some(cache) = cache {
        for prepared in slots.iter().flatten() {
            if let Some((key, json)) = &prepared.cache_entry {
                degrade(retry.run(|| cache.put_serialized(key, json, &prepared.record)))?;
            }
        }
    }
    let mut shard_emitted = 0usize;
    for prepared in slots.into_iter().flatten() {
        sink.accept(prepared.record)?;
        shard_emitted += 1;
    }
    if let Some(cache) = cache {
        degrade(retry.run(|| cache.flush()))?;
    }
    retry.run(|| sink.flush_shard())?;
    *emitted += shard_emitted;
    if let Some(ckpt) = checkpoint.as_deref_mut() {
        // The checkpoint line promises the shard's records are durable; force
        // them onto stable storage before making that promise.
        retry.run(|| sink.sync())?;
        ckpt.record_shard(ShardCheckpoint {
            shard,
            points,
            hits,
            misses: points - hits,
            emitted: *emitted,
            failures: checkpoint_failures,
            cache_degraded,
        })?;
    }
    Ok(cache_degraded)
}

/// The fail-fast abort error of a live point failure (`None` for failures
/// replayed from a checkpoint, which never abort).
fn point_error(failure: &PointFailure) -> Option<ExploreError> {
    match &failure.error {
        FailureCause::Sim(source) => Some(ExploreError::Point {
            index: failure.index,
            label: failure.label.clone(),
            source: source.clone(),
        }),
        FailureCause::Recorded(_) => None,
    }
}

/// What the compute stage hands the writer thread.
enum WriterMsg {
    /// A computed shard to persist.
    Shard(ComputedShard),
    /// The last shard was submitted and drained cleanly; finalize the sink.
    /// Deliberately *not* sent on a fail-fast or compute-stage abort, so an
    /// aborted sweep leaves the sink unfinished exactly like the serial path.
    Finish,
}

/// What the writer thread reports back to the compute stage.
enum WriterNote {
    /// One shard's I/O stage completed (or failed); success carries the
    /// shard's cache-degraded count.
    Drained { shard: usize, result: Result<usize> },
    /// The sink was finalized.
    Finished(Result<()>),
}

/// Per-shard metadata the compute stage keeps until the writer confirms the
/// shard durable — the progress callback fires only then.
struct PendingShard {
    shard: usize,
    points: usize,
    hits: usize,
    failed: usize,
}

/// Everything the shard loop needs, bundled so the serial and pipelined
/// executors share one signature (and, through [`compute_shard`] /
/// [`drain_shard`], the exact same per-shard work — their outputs are
/// byte-identical by construction).
struct SweepRun<'a> {
    spec: &'a SweepSpec,
    cache: Option<&'a dyn CacheBackend>,
    /// The resident artifact store live artifacts flow through — shared
    /// across shards, and (via [`SharedArtifactStore`]) across sweeps.
    artifacts: &'a std::sync::Mutex<ArtifactStore>,
    policy: ErrorPolicy,
    retry: RetryPolicy,
    shard_size: usize,
    shards: usize,
    total: usize,
    /// First shard to execute (everything before it was skipped via
    /// checkpoint resume).
    first: usize,
    /// Records already durable via the checkpointed prefix.
    emitted: usize,
    stats: CacheStats,
    failures: Vec<PointFailure>,
    done: usize,
    /// Cache writes degraded (skipped after exhausting retries) in this run.
    cache_degraded: usize,
}

impl SweepRun<'_> {
    fn shard_range(&self, shard: usize) -> (usize, usize) {
        let start = shard * self.shard_size;
        (start, (start + self.shard_size).min(self.total))
    }

    /// Registers one computed shard's accounting; returns the fail-fast abort
    /// error when the policy calls for one.
    fn absorb(
        &mut self,
        computed: &ComputedShard,
        shard_failures: Vec<PointFailure>,
    ) -> Option<ExploreError> {
        self.stats.hits += computed.hits;
        self.stats.misses += computed.points - computed.hits;
        let error = (self.policy == ErrorPolicy::FailFast)
            .then(|| shard_failures.first().and_then(point_error))
            .flatten();
        self.failures.extend(shard_failures);
        error
    }

    fn report(&mut self, meta: &PendingShard, progress: &mut dyn FnMut(&ShardProgress)) {
        self.done += meta.points;
        progress(&ShardProgress {
            shard: meta.shard,
            shards: self.shards,
            points: meta.points,
            hits: meta.hits,
            failures: meta.failed,
            skipped: 0,
            done: self.done,
            total: self.total,
        });
    }

    /// The strictly-alternating executor: each shard's I/O stage runs inline
    /// after its compute stage.
    fn run_serial(
        &mut self,
        sink: &mut dyn RecordSink,
        progress: &mut dyn FnMut(&ShardProgress),
        mut checkpoint: Option<&mut Checkpoint>,
    ) -> Result<()> {
        let mut emitted = self.emitted;
        for shard in self.first..self.shards {
            let (start, end) = self.shard_range(shard);
            let (computed, shard_failures) =
                compute_shard(self.spec, self.cache, shard, start, end, self.artifacts)?;
            let first_error = self.absorb(&computed, shard_failures);
            let meta = PendingShard {
                shard,
                points: computed.points,
                hits: computed.hits,
                failed: computed.checkpoint_failures.len(),
            };
            self.cache_degraded += drain_shard(
                computed,
                self.cache,
                sink,
                &mut checkpoint,
                &mut emitted,
                self.policy,
                self.retry,
            )?;
            self.report(&meta, progress);
            if let Some(err) = first_error {
                // FailFast: the failing shard was fully persisted (successes
                // cached, emitted and checkpointed); later shards are not
                // attempted.
                return Err(err);
            }
        }
        sink.finish()
    }

    /// Digests one feedback note from the writer thread: a cleanly-drained
    /// shard fires the progress callback; a failed drain (or finish) records
    /// the writer error and — mirroring the serial path — reports no progress
    /// for that shard.
    fn handle_note(
        &mut self,
        note: WriterNote,
        pending: &mut VecDeque<PendingShard>,
        progress: &mut dyn FnMut(&ShardProgress),
        writer_error: &mut Option<ExploreError>,
    ) {
        match note {
            WriterNote::Drained { shard, result } => {
                let meta = pending.pop_front().expect("one note per submitted shard");
                debug_assert_eq!(meta.shard, shard, "writer drains in submission order");
                match result {
                    Ok(degraded) => {
                        self.cache_degraded += degraded;
                        self.report(&meta, progress);
                    }
                    Err(e) => {
                        if writer_error.is_none() {
                            *writer_error = Some(e);
                        }
                    }
                }
            }
            WriterNote::Finished(Ok(())) => {}
            WriterNote::Finished(Err(e)) => {
                if writer_error.is_none() {
                    *writer_error = Some(e);
                }
            }
        }
    }

    /// The pipelined executor: computed shards flow through a bounded
    /// single-slot channel to a dedicated writer thread, which drains them in
    /// submission (= expansion) order under the unchanged durability contract.
    /// Shard N+1 therefore simulates while shard N persists; with the
    /// single-slot buffer the compute stage never runs more than two shards
    /// ahead of durability, bounding memory to a few shards of records.
    fn run_pipelined(
        &mut self,
        sink: &mut dyn RecordSink,
        progress: &mut dyn FnMut(&ShardProgress),
        mut checkpoint: Option<&mut Checkpoint>,
    ) -> Result<()> {
        let emitted_base = self.emitted;
        let cache = self.cache;
        let policy = self.policy;
        let retry = self.retry;
        let checkpoint_slot = checkpoint.take();
        std::thread::scope(|scope| {
            let (work_tx, work_rx) = mpsc::sync_channel::<WriterMsg>(1);
            let (note_tx, note_rx) = mpsc::channel::<WriterNote>();
            let writer = scope.spawn(move || {
                let mut checkpoint = checkpoint_slot;
                let mut emitted = emitted_base;
                while let Ok(msg) = work_rx.recv() {
                    match msg {
                        WriterMsg::Shard(computed) => {
                            let shard = computed.shard;
                            let result = drain_shard(
                                computed,
                                cache,
                                sink,
                                &mut checkpoint,
                                &mut emitted,
                                policy,
                                retry,
                            );
                            let errored = result.is_err();
                            let _ = note_tx.send(WriterNote::Drained { shard, result });
                            if errored {
                                // Dropping the receiver unblocks a compute
                                // stage waiting on the single-slot channel.
                                return;
                            }
                        }
                        WriterMsg::Finish => {
                            let _ = note_tx.send(WriterNote::Finished(sink.finish()));
                            return;
                        }
                    }
                }
                // Sender dropped without `Finish`: fail-fast or compute-stage
                // abort — leave the sink unfinished, like the serial path.
            });

            let mut pending: VecDeque<PendingShard> = VecDeque::new();
            let mut writer_error: Option<ExploreError> = None;
            let mut compute_error: Option<ExploreError> = None;
            let mut first_error: Option<ExploreError> = None;

            for shard in self.first..self.shards {
                // Surface progress notes between shards so callbacks stay
                // timely, and stop computing once the writer has failed.
                while let Ok(note) = note_rx.try_recv() {
                    self.handle_note(note, &mut pending, progress, &mut writer_error);
                }
                if writer_error.is_some() {
                    break;
                }
                let (start, end) = self.shard_range(shard);
                let (computed, shard_failures) =
                    match compute_shard(self.spec, self.cache, shard, start, end, self.artifacts) {
                        Ok(result) => result,
                        Err(e) => {
                            compute_error = Some(e);
                            break;
                        }
                    };
                first_error = self.absorb(&computed, shard_failures);
                pending.push_back(PendingShard {
                    shard,
                    points: computed.points,
                    hits: computed.hits,
                    failed: computed.checkpoint_failures.len(),
                });
                // The failing shard (under FailFast) is still submitted — and
                // therefore fully persisted — before the abort.
                if work_tx.send(WriterMsg::Shard(computed)).is_err() {
                    // The writer exited after an error; the note carrying it
                    // is already in (or on its way into) the feedback queue.
                    break;
                }
                if first_error.is_some() {
                    break;
                }
            }
            if writer_error.is_none() && compute_error.is_none() && first_error.is_none() {
                let _ = work_tx.send(WriterMsg::Finish);
            }
            drop(work_tx);
            // Drain every remaining note; the writer exits once its queue
            // empties (or immediately after an error), closing the channel.
            while let Ok(note) = note_rx.recv() {
                self.handle_note(note, &mut pending, progress, &mut writer_error);
            }
            if let Err(panic) = writer.join() {
                std::panic::resume_unwind(panic);
            }
            // Error precedence mirrors the serial path: an I/O-stage error
            // surfaces first (its shard precedes anything still in flight),
            // then a compute-stage engine error, then the fail-fast point
            // error.
            if let Some(e) = writer_error {
                return Err(e);
            }
            if let Some(e) = compute_error {
                return Err(e);
            }
            if let Some(e) = first_error {
                return Err(e);
            }
            Ok(())
        })
    }
}

/// The engine core behind [`ExploreSession`](crate::ExploreSession): runs a
/// sweep as a stream of shards, pushing completed records into `sink` in
/// deterministic expansion order, reporting per-shard progress, flushing the
/// cache and sink at every shard boundary, and — when a checkpoint is given —
/// recording each completed shard after its data is durable and skipping
/// shards the checkpoint already records. Unless disabled (see
/// [`StreamOptions::pipelined`]), shard compute overlaps the previous shard's
/// durability I/O on a dedicated writer thread.
pub(crate) fn execute(
    spec: &SweepSpec,
    cache: Option<&dyn CacheBackend>,
    options: &StreamOptions,
    sink: &mut dyn RecordSink,
    progress: &mut dyn FnMut(&ShardProgress),
    checkpoint: Option<&mut Checkpoint>,
    artifacts: &std::sync::Mutex<ArtifactStore>,
) -> Result<StreamOutcome> {
    spec.validate()?;
    let total = spec.point_count()?;
    let shard_size = effective_shard_size(options, total);
    let shards = total.div_ceil(shard_size);
    let completed_shards = checkpoint.as_ref().map_or(0, |c| c.completed().len());
    if completed_shards > shards {
        return Err(ExploreError::checkpoint(format!(
            "checkpoint records {completed_shards} shards but the sweep only has {shards}"
        )));
    }

    let mut run = SweepRun {
        spec,
        cache,
        artifacts,
        policy: options.error_policy,
        retry: options.retry,
        shard_size,
        shards,
        total,
        first: completed_shards,
        emitted: checkpoint.as_ref().map_or(0, |c| c.emitted()),
        stats: CacheStats::default(),
        failures: Vec::new(),
        done: 0,
        cache_degraded: 0,
    };
    let mut replayed_failures = 0usize;
    let mut skipped_points = 0usize;

    // A shard the checkpoint already records is not re-run: its successes are
    // durable (cache flushed before the shard line was appended, sink output
    // already emitted by the interrupted run) and its failures are replayed
    // for reporting without being re-attempted.
    for shard in 0..completed_shards {
        let (start, end) = run.shard_range(shard);
        let shard_points = end - start;
        let recorded = checkpoint
            .as_ref()
            .expect("completed_shards > 0 implies a checkpoint")
            .completed()[shard]
            .clone();
        for failure in &recorded.failures {
            run.failures.push(PointFailure {
                index: failure.index,
                label: failure.label.clone(),
                error: FailureCause::Recorded(failure.error.clone()),
            });
        }
        replayed_failures += recorded.failures.len();
        skipped_points += shard_points;
        run.done += shard_points;
        progress(&ShardProgress {
            shard,
            shards,
            points: shard_points,
            hits: 0,
            failures: recorded.failures.len(),
            skipped: shard_points,
            done: run.done,
            total,
        });
    }

    // Overlap pays only when more than one shard remains: with a single
    // shard there is no I/O window to hide the next shard's compute in.
    let pipelined = options.pipelined.unwrap_or(shards - completed_shards > 1);
    if pipelined {
        run.run_pipelined(sink, progress, checkpoint)?;
    } else {
        run.run_serial(sink, progress, checkpoint)?;
    }

    Ok(StreamOutcome {
        stats: run.stats,
        failures: run.failures,
        replayed_failures,
        shards,
        total_points: total,
        skipped_points,
        cache_degraded: run.cache_degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SimCache;
    use crate::session::ExploreSession;
    use crate::sink::VecSink;
    use crate::spec::ArchFamily;

    #[test]
    fn single_point_sweep_matches_direct_simulation() {
        let spec = SweepSpec::new("one");
        let outcome = ExploreSession::new(&spec).run_collect().unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.stats, CacheStats { hits: 0, misses: 1 });
        let direct = simulate_point(&spec.expand().unwrap()[0]).unwrap();
        let record = &outcome.records[0];
        assert_eq!(record.cycles, direct.total_cycles);
        assert_eq!(record.energy_uj, direct.total_energy.microjoules());
        assert_eq!(record.glb_blocks, direct.glb_blocks);
    }

    #[test]
    fn successful_points_are_cached_even_when_the_sweep_fails() {
        let dir =
            std::env::temp_dir().join(format!("simphony-explore-partial-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = SimCache::open(&dir).unwrap();
        // TeMPO can run BERT's dynamic products, the static MZI mesh cannot,
        // so the sweep fails after the TeMPO point simulated successfully.
        let spec = SweepSpec::new("partial")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::MziMesh])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 8 }]);
        assert!(ExploreSession::new(&spec)
            .cache(cache.clone())
            .run_collect()
            .is_err());
        assert_eq!(cache.len().unwrap(), 1, "good point must be cached");

        let retry = SweepSpec::new("partial-retry")
            .with_arch(vec![ArchFamily::Tempo])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 8 }]);
        let outcome = ExploreSession::new(&retry)
            .cache(cache)
            .run_collect()
            .unwrap();
        assert_eq!(outcome.stats, CacheStats { hits: 1, misses: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_failures_only_fail_their_own_points() {
        // The butterfly mesh rejects a non-power-of-two core height at
        // *artifact construction* time, before any simulation. The TeMPO
        // points sharing the sweep must still simulate and be cached — the
        // documented contract that used to be violated when a single failing
        // artifact aborted the whole batch up front.
        let dir = std::env::temp_dir().join(format!(
            "simphony-explore-artifact-partial-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = SimCache::open(&dir).unwrap();
        let spec = SweepSpec::new("artifact-partial")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::Butterfly])
            .with_core_dims(vec![6])
            .with_wavelengths(vec![1, 2]);
        let err = ExploreSession::new(&spec)
            .cache(cache.clone())
            .run_collect()
            .unwrap_err();
        match err {
            ExploreError::Point { index, label, .. } => {
                // Expansion order: tempo λ1, tempo λ2, butterfly λ1, butterfly λ2.
                assert_eq!(index, 2, "first failing point in expansion order");
                assert!(label.contains("butterfly"));
            }
            other => panic!("expected point error, got {other}"),
        }
        assert_eq!(
            cache.len().unwrap(),
            2,
            "both TeMPO points must be cached despite the butterfly artifact failing"
        );

        let retry = SweepSpec::new("artifact-retry")
            .with_arch(vec![ArchFamily::Tempo])
            .with_core_dims(vec![6])
            .with_wavelengths(vec![1, 2]);
        let outcome = ExploreSession::new(&retry)
            .cache(cache)
            .run_collect()
            .unwrap();
        assert_eq!(outcome.stats, CacheStats { hits: 2, misses: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_points_abort_with_context() {
        // A static-only MZI mesh cannot execute BERT's dynamic attention
        // products, so every point fails placement.
        let spec = SweepSpec::new("fail")
            .with_arch(vec![ArchFamily::MziMesh])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 32 }]);
        let err = ExploreSession::new(&spec).run_collect().unwrap_err();
        match err {
            ExploreError::Point { index, label, .. } => {
                assert_eq!(index, 0);
                assert!(label.contains("mzi_mesh"));
            }
            other => panic!("expected point error, got {other}"),
        }
    }

    #[test]
    fn keep_going_records_failures_and_streams_the_successes() {
        let spec = SweepSpec::new("keep-going")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::Butterfly])
            .with_core_dims(vec![6])
            .with_wavelengths(vec![1, 2]);
        let mut sink = VecSink::new();
        let outcome = ExploreSession::new(&spec)
            .chunk_size(1)
            .keep_going()
            .sink(&mut sink)
            .run()
            .unwrap();
        assert_eq!(outcome.total_points, 4);
        assert_eq!(outcome.shards, 4);
        assert_eq!(outcome.skipped_points, 0);
        assert_eq!(outcome.replayed_failures, 0);
        let failed: Vec<usize> = outcome.failures.iter().map(|f| f.index).collect();
        assert_eq!(failed, vec![2, 3], "both butterfly points fail");
        for failure in &outcome.failures {
            assert!(failure.label.contains("butterfly"));
            assert!(failure.error.to_string().contains("power-of-two"));
        }
        let records = sink.into_records();
        assert_eq!(records.len(), 2, "the TeMPO successes still stream out");
        assert_eq!(
            records.iter().map(|r| r.point.index).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn chunked_streaming_matches_the_in_memory_path() {
        let spec = SweepSpec::new("chunked")
            .with_wavelengths(vec![1, 2])
            .with_sparsity(vec![0.0, 0.5])
            .with_data_awareness(vec![
                simphony::DataAwareness::Aware,
                simphony::DataAwareness::Unaware,
            ]);
        let reference = ExploreSession::new(&spec).run_collect().unwrap();
        for chunk in [1, 3, 8, 100] {
            let mut sink = VecSink::new();
            let mut seen_shards = Vec::new();
            let outcome = ExploreSession::new(&spec)
                .chunk_size(chunk)
                .sink(&mut sink)
                .on_progress(|p| seen_shards.push((p.shard, p.points, p.done)))
                .run()
                .unwrap();
            assert_eq!(outcome.shards, 8usize.div_ceil(chunk));
            assert_eq!(seen_shards.len(), outcome.shards);
            assert_eq!(seen_shards.last().unwrap().2, 8, "all points processed");
            assert_eq!(
                serde_json::to_string(sink.records()).unwrap(),
                serde_json::to_string(&reference.records).unwrap(),
                "chunk size {chunk} must not change a single output byte"
            );
        }
    }

    #[test]
    fn shared_artifacts_match_per_point_extraction() {
        // Several points share each workload/arch artifact; the shared path
        // must produce the same reports as sharing-free per-point simulation.
        let spec = SweepSpec::new("sharing")
            .with_wavelengths(vec![1, 2])
            .with_sparsity(vec![0.0, 0.5])
            .with_data_awareness(vec![
                simphony::DataAwareness::Aware,
                simphony::DataAwareness::Unaware,
            ]);
        let outcome = ExploreSession::new(&spec).run_collect().unwrap();
        let points = spec.expand().unwrap();
        assert_eq!(outcome.records.len(), points.len());
        for (record, point) in outcome.records.iter().zip(&points) {
            let direct = simulate_point(point).unwrap();
            let expected = SweepRecord::from_report(point.clone(), &direct);
            assert_eq!(record, &expected);
        }
    }

    #[test]
    fn pipelined_execution_matches_the_serial_path_exactly() {
        // Records, stats, failure lists and shard accounting must be
        // indistinguishable between the overlapped and strictly-alternating
        // executors, at every chunk size, including a failing sweep.
        let spec = SweepSpec::new("pipeline-equiv")
            .with_wavelengths(vec![1, 2])
            .with_sparsity(vec![0.0, 0.5])
            .with_data_awareness(vec![
                simphony::DataAwareness::Aware,
                simphony::DataAwareness::Unaware,
            ]);
        for chunk in [1, 3, 8, 100] {
            let mut serial_sink = VecSink::new();
            let serial = ExploreSession::new(&spec)
                .chunk_size(chunk)
                .pipelined(false)
                .sink(&mut serial_sink)
                .run()
                .unwrap();
            let mut piped_sink = VecSink::new();
            let mut seen = Vec::new();
            let piped = ExploreSession::new(&spec)
                .chunk_size(chunk)
                .pipelined(true)
                .sink(&mut piped_sink)
                .on_progress(|p| seen.push((p.shard, p.points, p.done)))
                .run()
                .unwrap();
            assert_eq!(piped_sink.records(), serial_sink.records());
            assert_eq!(piped.stats, serial.stats);
            assert_eq!(piped.shards, serial.shards);
            assert_eq!(seen.len(), piped.shards, "one progress call per shard");
            assert_eq!(
                seen.last().unwrap().2,
                8,
                "progress reports every point done"
            );
            assert!(
                seen.windows(2).all(|w| w[0].0 + 1 == w[1].0),
                "progress arrives in shard order"
            );
        }

        // Failing sweep: same fail-fast error, same partial output.
        let failing = SweepSpec::new("pipeline-equiv-fail")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::Butterfly])
            .with_core_dims(vec![6])
            .with_wavelengths(vec![1, 2]);
        let mut serial_sink = VecSink::new();
        let serial_err = ExploreSession::new(&failing)
            .chunk_size(1)
            .pipelined(false)
            .sink(&mut serial_sink)
            .run()
            .unwrap_err();
        let mut piped_sink = VecSink::new();
        let piped_err = ExploreSession::new(&failing)
            .chunk_size(1)
            .pipelined(true)
            .sink(&mut piped_sink)
            .run()
            .unwrap_err();
        assert_eq!(piped_err.to_string(), serial_err.to_string());
        assert_eq!(piped_sink.records(), serial_sink.records());
    }

    #[test]
    fn forced_pipeline_works_with_a_single_shard() {
        // Auto mode picks the serial path for one shard; forcing the pipeline
        // must still produce identical output (writer handles exactly one
        // submission, then the finish message).
        let spec = SweepSpec::new("pipeline-one-shard").with_wavelengths(vec![1, 2]);
        let mut serial_sink = VecSink::new();
        ExploreSession::new(&spec)
            .pipelined(false)
            .sink(&mut serial_sink)
            .run()
            .unwrap();
        let mut piped_sink = VecSink::new();
        let outcome = ExploreSession::new(&spec)
            .pipelined(true)
            .sink(&mut piped_sink)
            .run()
            .unwrap();
        assert_eq!(outcome.shards, 1);
        assert_eq!(piped_sink.records(), serial_sink.records());
    }

    #[test]
    fn shared_artifact_store_makes_reruns_warm() {
        let store = ArtifactStore::shared(ArtifactBudget::default());
        let spec = SweepSpec::new("shared-store").with_wavelengths(vec![1, 2]);
        let cold = ExploreSession::new(&spec)
            .artifact_store(Arc::clone(&store))
            .run_collect()
            .unwrap();
        let after_cold = store.lock().unwrap().stats();
        // 1 distinct workload + 2 distinct accelerators, all fresh builds.
        assert_eq!(after_cold.entries, 3);
        assert_eq!(after_cold.misses, 3);
        assert_eq!(after_cold.evictions, 0);
        assert!(after_cold.bytes > 0);

        let warm = ExploreSession::new(&spec)
            .artifact_store(Arc::clone(&store))
            .run_collect()
            .unwrap();
        assert_eq!(warm.records, cold.records, "sharing never changes output");
        let after_warm = store.lock().unwrap().stats();
        assert_eq!(
            after_warm.misses, after_cold.misses,
            "the warm run built nothing"
        );
        assert_eq!(after_warm.hits, after_cold.hits + 3);
    }

    #[test]
    fn artifact_store_enforces_its_entry_budget_lru() {
        // 4 wavelengths → 1 workload + 4 accelerators = 5 distinct
        // artifacts, against a budget of 2 entries: the store must evict and
        // never exceed the cap, while the sweep's output stays correct.
        let store = ArtifactStore::shared(ArtifactBudget {
            max_entries: 2,
            max_bytes: 0,
        });
        let spec = SweepSpec::new("lru").with_wavelengths(vec![1, 2, 4, 8]);
        let bounded = ExploreSession::new(&spec)
            .chunk_size(1)
            .artifact_store(Arc::clone(&store))
            .run_collect()
            .unwrap();
        let stats = store.lock().unwrap().stats();
        assert!(stats.entries <= 2, "budget held: {} entries", stats.entries);
        assert!(stats.evictions >= 3, "evicted down to the cap");
        let unbounded = ExploreSession::new(&spec)
            .chunk_size(1)
            .artifact_budget(ArtifactBudget::unbounded())
            .run_collect()
            .unwrap();
        assert_eq!(bounded.records, unbounded.records);
    }

    #[test]
    fn artifact_store_enforces_its_byte_budget() {
        // A 1-byte budget can hold nothing: every insert immediately evicts,
        // so the resident set stays empty but simulation still succeeds (the
        // shard owns its Arcs regardless of residency).
        let store = ArtifactStore::shared(ArtifactBudget {
            max_entries: 0,
            max_bytes: 1,
        });
        let spec = SweepSpec::new("byte-budget").with_wavelengths(vec![1, 2]);
        let outcome = ExploreSession::new(&spec)
            .artifact_store(Arc::clone(&store))
            .run_collect()
            .unwrap();
        assert_eq!(outcome.records.len(), 2);
        let stats = store.lock().unwrap().stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.evictions, 3);
    }

    #[test]
    fn simulate_point_shared_matches_cold_simulation() {
        let store = ArtifactStore::shared(ArtifactBudget::default());
        let spec = SweepSpec::new("shared-point").with_wavelengths(vec![2]);
        let point = spec.expand().unwrap().remove(0);
        let cold = simulate_point(&point).unwrap();
        let first = simulate_point_shared(&store, &point).unwrap();
        assert_eq!(format!("{first}"), format!("{cold}"));
        let before = store.lock().unwrap().stats();
        assert_eq!(before.misses, 2);
        let second = simulate_point_shared(&store, &point).unwrap();
        assert_eq!(format!("{second}"), format!("{cold}"));
        let after = store.lock().unwrap().stats();
        assert_eq!(after.misses, before.misses, "second call was fully warm");
        assert_eq!(after.hits, before.hits + 2);
    }
}
