//! Streaming, sharded sweep execution with intra-sweep artifact sharing.
//!
//! The engine walks a [`SweepSpec`]'s expansion lazily (no full point `Vec`
//! is ever materialized), in configurable shards. Each shard serves what it
//! can from the result cache (any [`CacheBackend`]), groups the remaining
//! points by their *artifact identities* ([`SweepPoint::workload_key`] and
//! [`SweepPoint::arch_key`]), extracts each distinct workload and generates
//! each distinct accelerator once (reusing `Arc`s still live from the
//! previous shard), simulates the misses on a rayon-style thread pool, caches
//! the successes, and pushes the shard's records into a [`RecordSink`] in
//! deterministic expansion order before moving on. A fig9-style sweep whose
//! 64 points share 4 distinct workloads therefore pays for 4 extractions, not
//! 64 — and a million-point sweep holds one shard of points (plus that
//! shard's distinct artifacts) in memory, not the whole expansion.
//!
//! The public entry point is the [`ExploreSession`](crate::ExploreSession)
//! builder; [`run_sweep`] and [`run_sweep_streaming`] remain as deprecated
//! thin wrappers over it.
//!
//! Failure handling is governed by [`ErrorPolicy`]:
//!
//! * [`ErrorPolicy::FailFast`] (the default) finishes the failing shard — so
//!   every success in it is cached — then returns the first failing point's
//!   error in expansion order;
//! * [`ErrorPolicy::KeepGoing`] records each failure as a [`PointFailure`] in
//!   the [`StreamOutcome`] and keeps simulating. Combined with the cache (and
//!   a [checkpoint](crate::Checkpoint), which also remembers the *failures*)
//!   this makes interrupted or partially-failing sweeps resumable: re-running
//!   the same spec skips completed shards, replays known-bad points without
//!   re-attempting them, and only simulates what never finished.
//!
//! Records are emitted in the spec's deterministic expansion order — output
//! files are byte-identical whether the sweep ran on one thread or many
//! (`RAYON_NUM_THREADS` controls the pool size), in one shard or thousands,
//! with any [`CacheBackend`], and artifact sharing does not change a single
//! output bit versus per-point extraction (extraction and generation are pure
//! functions of the key).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use rayon::prelude::*;

use simphony::{
    Accelerator, MappingPlan, Result as SimResult, SimError, SimulationReport, Simulator,
};
use simphony_onn::ModelWorkload;
use simphony_units::BitWidth;

use crate::cache::{CacheBackend, CacheStats, SimCache};
use crate::checkpoint::{Checkpoint, CheckpointFailure, ShardCheckpoint};
use crate::error::{ExploreError, Result};
use crate::record::SweepRecord;
use crate::sink::{RecordSink, VecSink};
use crate::spec::{ArchKey, SweepPoint, SweepSpec, WorkloadKey};

/// The result of one in-memory sweep: ordered records plus cache accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One record per expanded point, in expansion order.
    pub records: Vec<SweepRecord>,
    /// How many points were served from the cache vs simulated.
    pub stats: CacheStats,
}

/// How the streaming executor reacts to a failing point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Finish the failing shard (so its successes are cached), then abort the
    /// sweep with the first failing point's error in expansion order.
    #[default]
    FailFast,
    /// Record every failure as a [`PointFailure`] in the outcome and keep
    /// simulating; successful points still stream to the sink and the cache,
    /// so a re-run after fixing the problem resumes instead of restarting.
    KeepGoing,
}

/// Tuning knobs of the streaming executor (see
/// [`ExploreSession`](crate::ExploreSession)).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamOptions {
    /// Points per shard; `None` (or `Some(0)`) runs the whole sweep as one
    /// shard. Smaller shards bound memory and flush durable sinks more often
    /// at the cost of more frequent artifact-store refreshes.
    pub chunk_size: Option<usize>,
    /// Failure handling (fail-fast by default).
    pub error_policy: ErrorPolicy,
}

impl StreamOptions {
    /// One shard, fail-fast — the exact semantics of [`run_sweep`].
    pub fn unchunked() -> Self {
        Self::default()
    }

    /// Shards of `chunk_size` points (0 means unchunked).
    #[must_use]
    pub fn chunked(chunk_size: usize) -> Self {
        Self {
            chunk_size: (chunk_size > 0).then_some(chunk_size),
            ..Self::default()
        }
    }

    /// Switches to [`ErrorPolicy::KeepGoing`].
    #[must_use]
    pub fn keep_going(mut self) -> Self {
        self.error_policy = ErrorPolicy::KeepGoing;
        self
    }
}

/// The effective points-per-shard a sweep of `total` points runs with.
pub(crate) fn effective_shard_size(options: &StreamOptions, total: usize) -> usize {
    match options.chunk_size {
        Some(size) if size > 0 => size,
        _ => total.max(1),
    }
}

/// Why a point failed: a live simulator error from this run, or a failure
/// replayed from a [checkpoint](crate::Checkpoint) of an earlier run (which
/// is reported but never re-attempted).
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// The simulator error, from this run.
    Sim(SimError),
    /// The rendered message of a failure recorded by an earlier run's
    /// checkpoint.
    Recorded(String),
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Sim(e) => e.fmt(f),
            FailureCause::Recorded(msg) => f.write_str(msg),
        }
    }
}

/// One failing point of a [`ErrorPolicy::KeepGoing`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// Zero-based index of the point in deterministic expansion order.
    pub index: usize,
    /// Human-readable description of the failing configuration.
    pub label: String,
    /// The underlying cause (live simulator error, or replayed checkpoint
    /// record).
    pub error: FailureCause,
}

/// Progress snapshot passed to the progress callback after each shard
/// completes (or is skipped via checkpoint resume).
#[derive(Debug, Clone, Copy)]
pub struct ShardProgress {
    /// Zero-based index of the shard that just completed.
    pub shard: usize,
    /// Total number of shards in the sweep.
    pub shards: usize,
    /// Points in this shard.
    pub points: usize,
    /// Cache hits in this shard.
    pub hits: usize,
    /// Failed points in this shard (including failures replayed from a
    /// checkpoint).
    pub failures: usize,
    /// Points skipped because a checkpoint already records this shard as
    /// complete (0 for a freshly-executed shard, equal to `points` for a
    /// skipped one).
    pub skipped: usize,
    /// Cumulative points processed so far (including this shard).
    pub done: usize,
    /// Total points in the sweep.
    pub total: usize,
}

/// The result of one streaming sweep. Records went to the sink; this carries
/// the accounting.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// How many points were served from the cache vs attempted. Points
    /// skipped via checkpoint resume appear in neither counter.
    pub stats: CacheStats,
    /// Every failing point, in expansion order — both failures from this run
    /// and failures replayed from the checkpoint (the first
    /// [`replayed_failures`](Self::replayed_failures) entries). Always empty
    /// on a fully successful sweep; under [`ErrorPolicy::FailFast`] a *live*
    /// failure is returned as the sweep's error instead, but replayed
    /// failures are still reported here without aborting.
    pub failures: Vec<PointFailure>,
    /// How many of [`failures`](Self::failures) were replayed from the
    /// checkpoint rather than attempted in this run.
    pub replayed_failures: usize,
    /// Number of shards the sweep ran as.
    pub shards: usize,
    /// Total points in the expansion.
    pub total_points: usize,
    /// Points skipped because the checkpoint already recorded their shard as
    /// complete.
    pub skipped_points: usize,
}

fn build_accelerator(point: &SweepPoint) -> SimResult<Accelerator> {
    let arch = point.arch.generate(point.arch_params(), point.clock_ghz)?;
    Accelerator::builder(format!("{}_sweep", point.arch))
        .sub_arch(arch)
        .build()
}

fn extract_workload(point: &SweepPoint) -> SimResult<ModelWorkload> {
    point
        .workload
        .extract(BitWidth::new(point.bits), point.sparsity, point.seed)
}

/// Simulates one fully-bound configuration, extracting its artifacts from
/// scratch.
///
/// This is the sharing-free path (the streaming executor amortizes artifacts
/// across a shard instead); it exists for single-point callers like
/// `simphony-cli run` and produces bit-identical reports to the shared path.
///
/// # Errors
///
/// Propagates architecture-generation, workload-extraction and simulation
/// errors.
pub fn simulate_point(point: &SweepPoint) -> SimResult<SimulationReport> {
    let accel = build_accelerator(point)?;
    let workload = extract_workload(point)?;
    simulate_point_with(point, &Arc::new(accel), &workload)
}

/// Simulates a point against pre-built (possibly shared) artifacts.
fn simulate_point_with(
    point: &SweepPoint,
    accel: &Arc<Accelerator>,
    workload: &ModelWorkload,
) -> SimResult<SimulationReport> {
    Simulator::shared(Arc::clone(accel))
        .with_config(point.sim_config())
        .simulate(workload, &MappingPlan::default())
}

/// The distinct artifacts of one shard of sweep points, built once and shared
/// across the executor threads.
///
/// Construction is fallible *per key*, not per store: a failing artifact is
/// recorded as that key's error and only fails the points that need it — the
/// rest of the shard still simulates (and caches), honouring the engine's
/// partial-progress contract.
#[derive(Default)]
struct ArtifactStore {
    workloads: HashMap<WorkloadKey, std::result::Result<Arc<ModelWorkload>, SimError>>,
    accelerators: HashMap<ArchKey, std::result::Result<Arc<Accelerator>, SimError>>,
}

impl ArtifactStore {
    /// Extracts/generates every distinct artifact of `points` (both kinds in
    /// parallel over their distinct keys). Artifacts already built by
    /// `previous` — the preceding shard's store — are reused via `Arc` clone
    /// instead of rebuilt, so workloads and accelerators that stay live
    /// across a shard boundary are only ever constructed once per sweep.
    fn build(points: &[&SweepPoint], previous: &ArtifactStore) -> Self {
        let mut store = ArtifactStore::default();
        let mut workload_reps: Vec<&SweepPoint> = Vec::new();
        let mut arch_reps: Vec<&SweepPoint> = Vec::new();
        let mut workload_keys: HashSet<WorkloadKey> = HashSet::new();
        let mut arch_keys: HashSet<ArchKey> = HashSet::new();
        for &point in points {
            let workload_key = point.workload_key();
            if workload_keys.insert(workload_key.clone()) {
                match previous.workloads.get(&workload_key) {
                    Some(Ok(live)) => {
                        store.workloads.insert(workload_key, Ok(Arc::clone(live)));
                    }
                    // Failed keys are retried: a previous shard's error may be
                    // transient from the cache's point of view, and rebuilding
                    // keeps error attribution local to this shard.
                    _ => workload_reps.push(point),
                }
            }
            let arch_key = point.arch_key();
            if arch_keys.insert(arch_key) {
                match previous.accelerators.get(&arch_key) {
                    Some(Ok(live)) => {
                        store.accelerators.insert(arch_key, Ok(Arc::clone(live)));
                    }
                    _ => arch_reps.push(point),
                }
            }
        }

        let extracted: Vec<SimResult<ModelWorkload>> = workload_reps
            .par_iter()
            .map(|point| extract_workload(point))
            .collect();
        for (point, result) in workload_reps.iter().zip(extracted) {
            store
                .workloads
                .insert(point.workload_key(), result.map(Arc::new));
        }

        let generated: Vec<SimResult<Accelerator>> = arch_reps
            .par_iter()
            .map(|point| build_accelerator(point))
            .collect();
        for (point, result) in arch_reps.iter().zip(generated) {
            store
                .accelerators
                .insert(point.arch_key(), result.map(Arc::new));
        }

        store
    }

    fn simulate(&self, point: &SweepPoint) -> SimResult<SimulationReport> {
        let workload = self.workloads[&point.workload_key()]
            .as_ref()
            .map_err(SimError::clone)?;
        let accel = self.accelerators[&point.arch_key()]
            .as_ref()
            .map_err(SimError::clone)?;
        simulate_point_with(point, accel, workload)
    }
}

/// The engine core behind [`ExploreSession`](crate::ExploreSession): runs a
/// sweep as a stream of shards, pushing completed records into `sink` in
/// deterministic expansion order, reporting per-shard progress, flushing the
/// cache and sink at every shard boundary, and — when a checkpoint is given —
/// recording each completed shard after its data is durable and skipping
/// shards the checkpoint already records.
pub(crate) fn execute(
    spec: &SweepSpec,
    cache: Option<&dyn CacheBackend>,
    options: &StreamOptions,
    sink: &mut dyn RecordSink,
    progress: &mut dyn FnMut(&ShardProgress),
    mut checkpoint: Option<&mut Checkpoint>,
) -> Result<StreamOutcome> {
    spec.validate()?;
    let total = spec.point_count()?;
    let shard_size = effective_shard_size(options, total);
    let shards = total.div_ceil(shard_size);
    let completed_shards = checkpoint.as_ref().map_or(0, |c| c.completed().len());
    if completed_shards > shards {
        return Err(ExploreError::checkpoint(format!(
            "checkpoint records {completed_shards} shards but the sweep only has {shards}"
        )));
    }

    let mut carried = ArtifactStore::default();
    let mut stats = CacheStats::default();
    let mut failures: Vec<PointFailure> = Vec::new();
    let mut replayed_failures = 0usize;
    let mut skipped_points = 0usize;
    let mut first_error: Option<ExploreError> = None;
    let mut done = 0usize;
    let mut emitted = checkpoint.as_ref().map_or(0, |c| c.emitted());

    for shard in 0..shards {
        let start = shard * shard_size;
        let end = (start + shard_size).min(total);
        let shard_points = end - start;

        // A shard the checkpoint already records is not re-run: its successes
        // are durable (cache flushed before the shard line was appended, sink
        // output already emitted by the interrupted run) and its failures are
        // replayed for reporting without being re-attempted.
        if shard < completed_shards {
            let recorded = checkpoint
                .as_ref()
                .expect("completed_shards > 0 implies a checkpoint")
                .completed()[shard]
                .clone();
            for failure in &recorded.failures {
                failures.push(PointFailure {
                    index: failure.index,
                    label: failure.label.clone(),
                    error: FailureCause::Recorded(failure.error.clone()),
                });
            }
            replayed_failures += recorded.failures.len();
            skipped_points += shard_points;
            done += shard_points;
            progress(&ShardProgress {
                shard,
                shards,
                points: shard_points,
                hits: 0,
                failures: recorded.failures.len(),
                skipped: shard_points,
                done,
                total,
            });
            continue;
        }

        // Serve cache hits first; only misses go to the artifact store and
        // the thread pool. Points sit in `Option` slots so a missed point can
        // later be *moved* into its record instead of cloned.
        let mut points: Vec<Option<SweepPoint>> =
            (start..end).map(|i| Some(spec.point_at(i))).collect();
        let mut slots: Vec<Option<SweepRecord>> = Vec::with_capacity(points.len());
        let mut miss_indices: Vec<usize> = Vec::new();
        for (slot, point) in points.iter().enumerate() {
            let point = point.as_ref().expect("all points present before execution");
            match cache.and_then(|c| c.get(point)) {
                Some(record) => slots.push(Some(record)),
                None => {
                    slots.push(None);
                    miss_indices.push(slot);
                }
            }
        }
        let shard_hits = shard_points - miss_indices.len();
        stats.hits += shard_hits;
        stats.misses += miss_indices.len();

        let missed: Vec<&SweepPoint> = miss_indices
            .iter()
            .map(|&slot| points[slot].as_ref().expect("miss slot holds its point"))
            .collect();
        let artifacts = ArtifactStore::build(&missed, &carried);
        let computed: Vec<SimResult<SimulationReport>> = missed
            .par_iter()
            .map(|point| artifacts.simulate(point))
            .collect();
        drop(missed);

        let mut shard_failures: Vec<CheckpointFailure> = Vec::new();
        for (&slot, result) in miss_indices.iter().zip(computed) {
            let point = points[slot].take().expect("miss slot holds its point");
            match result {
                Ok(report) => {
                    let record = SweepRecord::from_report(point, &report);
                    if let Some(cache) = cache {
                        cache.put(&record)?;
                    }
                    slots[slot] = Some(record);
                }
                Err(error) => {
                    let label = point.label();
                    if first_error.is_none() && options.error_policy == ErrorPolicy::FailFast {
                        first_error = Some(ExploreError::Point {
                            index: point.index,
                            label: label.clone(),
                            source: error.clone(),
                        });
                    }
                    shard_failures.push(CheckpointFailure {
                        index: point.index,
                        label: label.clone(),
                        error: error.to_string(),
                    });
                    failures.push(PointFailure {
                        index: point.index,
                        label,
                        error: FailureCause::Sim(error),
                    });
                }
            }
        }

        // Emit the shard's completed records in expansion order (failed
        // points simply have no record), then make everything durable in
        // dependency order: cache first, sink second, checkpoint last — a
        // checkpointed shard is therefore always fully recoverable.
        let mut shard_emitted = 0usize;
        for record in slots.into_iter().flatten() {
            sink.accept(record)?;
            shard_emitted += 1;
        }
        if let Some(cache) = cache {
            cache.flush()?;
        }
        sink.flush_shard()?;
        emitted += shard_emitted;
        let failed = shard_failures.len();
        if let Some(ckpt) = checkpoint.as_deref_mut() {
            ckpt.record_shard(ShardCheckpoint {
                shard,
                points: shard_points,
                hits: shard_hits,
                misses: shard_points - shard_hits,
                emitted,
                failures: shard_failures,
            })?;
        }
        // Next shard reuses whatever artifacts stay live across the boundary.
        // A fully-cache-hit shard builds nothing — keep the previous carry
        // then, or a warm stretch in the middle of a sweep would drop every
        // live Arc and force the next cold shard to rebuild them.
        if !miss_indices.is_empty() {
            carried = artifacts;
        }

        done += shard_points;
        progress(&ShardProgress {
            shard,
            shards,
            points: shard_points,
            hits: shard_hits,
            failures: failed,
            skipped: 0,
            done,
            total,
        });

        if let Some(err) = first_error.take() {
            // FailFast: the failing shard was fully processed (successes
            // cached, emitted and checkpointed); later shards are not
            // attempted.
            return Err(err);
        }
    }

    sink.finish()?;
    Ok(StreamOutcome {
        stats,
        failures,
        replayed_failures,
        shards,
        total_points: total,
        skipped_points,
    })
}

/// Runs a sweep as a stream of shards, pushing completed records into `sink`
/// in deterministic expansion order and reporting per-shard progress through
/// `progress`.
///
/// # Errors
///
/// Returns spec-validation, cache/sink I/O errors, and — under
/// [`ErrorPolicy::FailFast`] — the first failing point's error (the failing
/// shard is still completed first so its successes are cached). Under
/// [`ErrorPolicy::KeepGoing`] failing points are reported in
/// [`StreamOutcome::failures`] instead.
#[deprecated(
    since = "0.1.0",
    note = "use `ExploreSession::new(spec).options(..).sink(..).run()` — the builder also \
            supports pluggable cache backends and checkpoint/resume"
)]
pub fn run_sweep_streaming(
    spec: &SweepSpec,
    cache: Option<&SimCache>,
    options: &StreamOptions,
    sink: &mut dyn RecordSink,
    mut progress: impl FnMut(&ShardProgress),
) -> Result<StreamOutcome> {
    execute(
        spec,
        cache.map(|c| c as &dyn CacheBackend),
        options,
        sink,
        &mut |shard| progress(shard),
        None,
    )
}

/// Runs a sweep in memory, optionally backed by a result cache.
///
/// # Errors
///
/// Returns the first failing point's error in expansion order (points are
/// still attempted in parallel; failures abort the sweep rather than
/// producing partial files), or a spec-validation/cache I/O error. Points
/// that simulated successfully are cached even when another point fails —
/// including points whose *artifacts* built while another point's artifact
/// did not — so a retry after fixing the spec only re-runs what actually
/// needs running.
#[deprecated(
    since = "0.1.0",
    note = "use `ExploreSession::new(spec).run_collect()` (add `.cache(..)` for the result cache)"
)]
pub fn run_sweep(spec: &SweepSpec, cache: Option<&SimCache>) -> Result<SweepOutcome> {
    let mut sink = VecSink::new();
    let outcome = execute(
        spec,
        cache.map(|c| c as &dyn CacheBackend),
        &StreamOptions::unchunked(),
        &mut sink,
        &mut |_| {},
        None,
    )?;
    Ok(SweepOutcome {
        records: sink.into_records(),
        stats: outcome.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ExploreSession;
    use crate::spec::ArchFamily;

    #[test]
    fn single_point_sweep_matches_direct_simulation() {
        let spec = SweepSpec::new("one");
        let outcome = ExploreSession::new(&spec).run_collect().unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.stats, CacheStats { hits: 0, misses: 1 });
        let direct = simulate_point(&spec.expand().unwrap()[0]).unwrap();
        let record = &outcome.records[0];
        assert_eq!(record.cycles, direct.total_cycles);
        assert_eq!(record.energy_uj, direct.total_energy.microjoules());
        assert_eq!(record.glb_blocks, direct.glb_blocks);
    }

    #[test]
    fn successful_points_are_cached_even_when_the_sweep_fails() {
        let dir =
            std::env::temp_dir().join(format!("simphony-explore-partial-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = SimCache::open(&dir).unwrap();
        // TeMPO can run BERT's dynamic products, the static MZI mesh cannot,
        // so the sweep fails after the TeMPO point simulated successfully.
        let spec = SweepSpec::new("partial")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::MziMesh])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 8 }]);
        assert!(ExploreSession::new(&spec)
            .cache(cache.clone())
            .run_collect()
            .is_err());
        assert_eq!(cache.len().unwrap(), 1, "good point must be cached");

        let retry = SweepSpec::new("partial-retry")
            .with_arch(vec![ArchFamily::Tempo])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 8 }]);
        let outcome = ExploreSession::new(&retry)
            .cache(cache)
            .run_collect()
            .unwrap();
        assert_eq!(outcome.stats, CacheStats { hits: 1, misses: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_failures_only_fail_their_own_points() {
        // The butterfly mesh rejects a non-power-of-two core height at
        // *artifact construction* time, before any simulation. The TeMPO
        // points sharing the sweep must still simulate and be cached — the
        // documented contract that used to be violated when a single failing
        // artifact aborted the whole batch up front.
        let dir = std::env::temp_dir().join(format!(
            "simphony-explore-artifact-partial-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = SimCache::open(&dir).unwrap();
        let spec = SweepSpec::new("artifact-partial")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::Butterfly])
            .with_core_dims(vec![6])
            .with_wavelengths(vec![1, 2]);
        let err = ExploreSession::new(&spec)
            .cache(cache.clone())
            .run_collect()
            .unwrap_err();
        match err {
            ExploreError::Point { index, label, .. } => {
                // Expansion order: tempo λ1, tempo λ2, butterfly λ1, butterfly λ2.
                assert_eq!(index, 2, "first failing point in expansion order");
                assert!(label.contains("butterfly"));
            }
            other => panic!("expected point error, got {other}"),
        }
        assert_eq!(
            cache.len().unwrap(),
            2,
            "both TeMPO points must be cached despite the butterfly artifact failing"
        );

        let retry = SweepSpec::new("artifact-retry")
            .with_arch(vec![ArchFamily::Tempo])
            .with_core_dims(vec![6])
            .with_wavelengths(vec![1, 2]);
        let outcome = ExploreSession::new(&retry)
            .cache(cache)
            .run_collect()
            .unwrap();
        assert_eq!(outcome.stats, CacheStats { hits: 2, misses: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_points_abort_with_context() {
        // A static-only MZI mesh cannot execute BERT's dynamic attention
        // products, so every point fails placement.
        let spec = SweepSpec::new("fail")
            .with_arch(vec![ArchFamily::MziMesh])
            .with_workload(vec![crate::spec::WorkloadSpec::Bert { seq_len: 32 }]);
        let err = ExploreSession::new(&spec).run_collect().unwrap_err();
        match err {
            ExploreError::Point { index, label, .. } => {
                assert_eq!(index, 0);
                assert!(label.contains("mzi_mesh"));
            }
            other => panic!("expected point error, got {other}"),
        }
    }

    #[test]
    fn keep_going_records_failures_and_streams_the_successes() {
        let spec = SweepSpec::new("keep-going")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::Butterfly])
            .with_core_dims(vec![6])
            .with_wavelengths(vec![1, 2]);
        let mut sink = VecSink::new();
        let outcome = ExploreSession::new(&spec)
            .chunk_size(1)
            .keep_going()
            .sink(&mut sink)
            .run()
            .unwrap();
        assert_eq!(outcome.total_points, 4);
        assert_eq!(outcome.shards, 4);
        assert_eq!(outcome.skipped_points, 0);
        assert_eq!(outcome.replayed_failures, 0);
        let failed: Vec<usize> = outcome.failures.iter().map(|f| f.index).collect();
        assert_eq!(failed, vec![2, 3], "both butterfly points fail");
        for failure in &outcome.failures {
            assert!(failure.label.contains("butterfly"));
            assert!(failure.error.to_string().contains("power-of-two"));
        }
        let records = sink.into_records();
        assert_eq!(records.len(), 2, "the TeMPO successes still stream out");
        assert_eq!(
            records.iter().map(|r| r.point.index).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn chunked_streaming_matches_the_in_memory_path() {
        let spec = SweepSpec::new("chunked")
            .with_wavelengths(vec![1, 2])
            .with_sparsity(vec![0.0, 0.5])
            .with_data_awareness(vec![
                simphony::DataAwareness::Aware,
                simphony::DataAwareness::Unaware,
            ]);
        let reference = ExploreSession::new(&spec).run_collect().unwrap();
        for chunk in [1, 3, 8, 100] {
            let mut sink = VecSink::new();
            let mut seen_shards = Vec::new();
            let outcome = ExploreSession::new(&spec)
                .chunk_size(chunk)
                .sink(&mut sink)
                .on_progress(|p| seen_shards.push((p.shard, p.points, p.done)))
                .run()
                .unwrap();
            assert_eq!(outcome.shards, 8usize.div_ceil(chunk));
            assert_eq!(seen_shards.len(), outcome.shards);
            assert_eq!(seen_shards.last().unwrap().2, 8, "all points processed");
            assert_eq!(
                serde_json::to_string(sink.records()).unwrap(),
                serde_json::to_string(&reference.records).unwrap(),
                "chunk size {chunk} must not change a single output byte"
            );
        }
    }

    #[test]
    fn shared_artifacts_match_per_point_extraction() {
        // Several points share each workload/arch artifact; the shared path
        // must produce the same reports as sharing-free per-point simulation.
        let spec = SweepSpec::new("sharing")
            .with_wavelengths(vec![1, 2])
            .with_sparsity(vec![0.0, 0.5])
            .with_data_awareness(vec![
                simphony::DataAwareness::Aware,
                simphony::DataAwareness::Unaware,
            ]);
        let outcome = ExploreSession::new(&spec).run_collect().unwrap();
        let points = spec.expand().unwrap();
        assert_eq!(outcome.records.len(), points.len());
        for (record, point) in outcome.records.iter().zip(&points) {
            let direct = simulate_point(point).unwrap();
            let expected = SweepRecord::from_report(point.clone(), &direct);
            assert_eq!(record, &expected);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_session_api() {
        // `run_sweep` / `run_sweep_streaming` are contractually thin wrappers
        // over the session builder until downstream callers migrate.
        let spec = SweepSpec::new("wrappers").with_wavelengths(vec![1, 2]);
        let via_session = ExploreSession::new(&spec).run_collect().unwrap();
        let via_wrapper = run_sweep(&spec, None).unwrap();
        assert_eq!(via_wrapper.records, via_session.records);
        assert_eq!(via_wrapper.stats, via_session.stats);

        let mut sink = VecSink::new();
        let outcome =
            run_sweep_streaming(&spec, None, &StreamOptions::chunked(1), &mut sink, |_| {})
                .unwrap();
        assert_eq!(outcome.shards, 2);
        assert_eq!(sink.records(), &via_session.records[..]);
    }
}
