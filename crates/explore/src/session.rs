//! The [`ExploreSession`] builder — the one entry point to the sweep engine.
//!
//! A session is built up from named parts and then
//! [`run`](ExploreSession::run):
//!
//! ```
//! use simphony_explore::{DirCache, ExploreSession, JsonlSink, SweepSpec};
//!
//! let dir = std::env::temp_dir().join(format!("simphony-doc-session-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir).unwrap();
//! let spec = SweepSpec::new("wavelengths").with_wavelengths(vec![1, 2, 4]);
//! let mut sink = JsonlSink::create(dir.join("records.jsonl"))?;
//! let outcome = ExploreSession::new(&spec)
//!     .cache(DirCache::open(dir.join("cache"))?)
//!     .chunk_size(2)
//!     .keep_going()
//!     .sink(&mut sink)
//!     .on_progress(|shard| eprintln!("shard {}/{} done", shard.shard + 1, shard.shards))
//!     .checkpoint(dir.join("sweep.ckpt"))
//!     .run()?;
//! assert_eq!(outcome.total_points, 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), simphony_explore::ExploreError>(())
//! ```
//!
//! Every part is optional: `ExploreSession::new(&spec).run_collect()?` is the
//! smallest sweep (one shard, fail-fast, records collected in memory).
//!
//! The session also owns **checkpoint/resume**: give it a
//! [`checkpoint`](ExploreSession::checkpoint) path and every completed shard
//! is recorded (after the shard's cache entries and sink output are flushed)
//! in a sidecar file, including the shard's failing points. Re-running the
//! same session skips recorded shards outright — no cache reads, no
//! re-simulation, no duplicate sink output — and replays the recorded
//! failures without re-attempting them. See [`Checkpoint`] for the file
//! format and `simphony-cli resume` for the command-line workflow.

use std::path::PathBuf;

use crate::cache::CacheBackend;
use crate::checkpoint::{Checkpoint, CheckpointHeader};
use crate::error::Result;
use crate::lease::{execute_coexec, LeaseConfig, LeaseLedger};
use crate::retry::RetryPolicy;
use crate::runner::{
    effective_shard_size, execute, ArtifactBudget, ArtifactStore, ErrorPolicy, ShardProgress,
    SharedArtifactStore, StreamOptions, StreamOutcome, SweepOutcome,
};
use crate::sink::{RecordSink, VecSink};
use crate::spec::SweepSpec;

/// Boxed per-shard progress callback held by a session.
type ProgressCallback<'a> = Box<dyn FnMut(&ShardProgress) + 'a>;

/// Builder for one sweep execution — the single entry point to the sweep
/// engine; see [`ExploreSession::new`] for the defaults each part starts
/// from.
pub struct ExploreSession<'a> {
    spec: &'a SweepSpec,
    cache: Option<Box<dyn CacheBackend + 'a>>,
    options: StreamOptions,
    sink: Option<&'a mut dyn RecordSink>,
    progress: Option<ProgressCallback<'a>>,
    checkpoint: Option<PathBuf>,
    lease_dir: Option<PathBuf>,
    lease: LeaseConfig,
    artifacts: Option<SharedArtifactStore>,
    artifact_budget: ArtifactBudget,
}

impl<'a> ExploreSession<'a> {
    /// A session over `spec` with the engine defaults: no cache, one shard,
    /// fail-fast, auto-pipelined, no sink (use
    /// [`run_collect`](Self::run_collect) or [`sink`](Self::sink)), no
    /// progress callback, no checkpoint.
    pub fn new(spec: &'a SweepSpec) -> Self {
        Self {
            spec,
            cache: None,
            options: StreamOptions::default(),
            sink: None,
            progress: None,
            checkpoint: None,
            lease_dir: None,
            lease: LeaseConfig::default(),
            artifacts: None,
            artifact_budget: ArtifactBudget::default(),
        }
    }

    /// Shares a resident [`ArtifactStore`] with this sweep: artifacts it
    /// already holds are reused instead of rebuilt, and artifacts this sweep
    /// builds stay resident (subject to the store's budget) for whoever runs
    /// next. This is how a long-lived process — the `simphony-cli serve`
    /// daemon — amortizes workload extraction and accelerator generation
    /// across requests. Without it each run uses a private store bounded by
    /// [`artifact_budget`](Self::artifact_budget).
    #[must_use]
    pub fn artifact_store(mut self, store: SharedArtifactStore) -> Self {
        self.artifacts = Some(store);
        self
    }

    /// Caps the session-private artifact store (when no
    /// [`artifact_store`](Self::artifact_store) is shared in). Default:
    /// [`ArtifactBudget::default`] — 256 entries / 512 MiB, so a sweep over
    /// thousands of distinct workloads no longer grows its store without
    /// bound.
    #[must_use]
    pub fn artifact_budget(mut self, budget: ArtifactBudget) -> Self {
        self.artifact_budget = budget;
        self
    }

    /// Attaches a result-cache backend (see [`CacheBackend`]); hits skip
    /// simulation, successes are written back.
    #[must_use]
    pub fn cache(mut self, backend: impl CacheBackend + 'a) -> Self {
        self.cache = Some(Box::new(backend));
        self
    }

    /// Attaches an already-boxed backend (what [`crate::BackendKind::open`]
    /// returns).
    #[must_use]
    pub fn cache_boxed(mut self, backend: Box<dyn CacheBackend + 'a>) -> Self {
        self.cache = Some(backend);
        self
    }

    /// Streams the sweep in shards of `points` (0 restores the single-shard
    /// default). Smaller shards bound memory and flush durable sinks more
    /// often at the cost of more frequent artifact-store refreshes.
    #[must_use]
    pub fn chunk_size(mut self, points: usize) -> Self {
        self.options.chunk_size = (points > 0).then_some(points);
        self
    }

    /// Records failing points in the outcome and keeps sweeping instead of
    /// aborting (see [`ErrorPolicy::KeepGoing`]).
    #[must_use]
    pub fn keep_going(mut self) -> Self {
        self.options.error_policy = ErrorPolicy::KeepGoing;
        self
    }

    /// Aborts on the first failing point (the default; see
    /// [`ErrorPolicy::FailFast`]).
    #[must_use]
    pub fn fail_fast(mut self) -> Self {
        self.options.error_policy = ErrorPolicy::FailFast;
        self
    }

    /// Forces the two-stage executor pipeline on or off. By default the
    /// engine decides automatically: shard compute overlaps the previous
    /// shard's durability I/O (cache writes, sink flush, checkpoint append)
    /// on a dedicated writer thread whenever more than one shard remains.
    /// Output is byte-identical either way — `pipelined(false)` is the
    /// escape hatch (`--no-pipeline` on the CLI) for debugging or for
    /// environments where the extra thread is unwelcome.
    #[must_use]
    pub fn pipelined(mut self, enabled: bool) -> Self {
        self.options.pipelined = Some(enabled);
        self
    }

    /// Replaces the whole option block at once (compatibility with code that
    /// already holds a [`StreamOptions`]).
    #[must_use]
    pub fn options(mut self, options: StreamOptions) -> Self {
        self.options = options;
        self
    }

    /// Sends completed records to `sink`, in deterministic expansion order,
    /// flushed at every shard boundary. Without a sink, [`run`](Self::run)
    /// discards records (useful for cache-warming) and
    /// [`run_collect`](Self::run_collect) gathers them in memory.
    #[must_use]
    pub fn sink(mut self, sink: &'a mut dyn RecordSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Calls `callback` after every shard (including shards skipped via
    /// checkpoint resume, which report `skipped > 0`).
    #[must_use]
    pub fn on_progress(mut self, callback: impl FnMut(&ShardProgress) + 'a) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Records per-shard outcomes in a sidecar checkpoint file at `path`,
    /// and resumes from it when it already exists: shards it records as
    /// complete are skipped and their failures replayed without re-attempts.
    ///
    /// The file is bound to the spec's content fingerprint, the effective
    /// shard size, and the error policy — [`run`](Self::run) fails with
    /// [`crate::ExploreError::Checkpoint`] if an existing file belongs to a
    /// different sweep, instead of silently duplicating work or output.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the durability-chain retry policy: cache `put`/`flush` and sink
    /// flushes are re-attempted on transient failure with exponential backoff
    /// and decorrelated jitter (see [`RetryPolicy`]). Default:
    /// [`RetryPolicy::none`] — one attempt per operation. Under
    /// [`keep_going`](Self::keep_going), a cache write that still fails after
    /// the policy is exhausted is *degraded* (the record reaches the sink,
    /// the skip is counted in [`StreamOutcome::cache_degraded`]) instead of
    /// aborting the sweep.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.options.retry = policy;
        self
    }

    /// Co-executes the sweep with other worker processes through a shared
    /// lease directory (created if missing): shards are claimed via
    /// create-exclusive lease files, published as atomically-renamed part
    /// files, and merged — in shard order — into this session's sink by this
    /// process, which acts as the *primary*. Additional processes attach with
    /// [`join_sweep`](crate::join_sweep) (`simphony-cli join`); a worker that
    /// dies mid-shard loses its lease after the
    /// [`lease_config`](Self::lease_config) timeout and its shard is
    /// re-claimed.
    ///
    /// Requires [`keep_going`](Self::keep_going): fail-fast across a fleet of
    /// independent processes is ill-defined (a remote worker cannot abort the
    /// primary's sink mid-merge), so [`run`](Self::run) refuses the
    /// combination. Merged output is byte-identical to a single-process run
    /// of the same spec.
    #[must_use]
    pub fn coexecute(mut self, lease_dir: impl Into<PathBuf>) -> Self {
        self.lease_dir = Some(lease_dir.into());
        self
    }

    /// Tunes the lease protocol ([`coexecute`](Self::coexecute)): stale-lease
    /// timeout, poll interval, owner label.
    #[must_use]
    pub fn lease_config(mut self, config: LeaseConfig) -> Self {
        self.lease = config;
        self
    }

    /// Runs the sweep, streaming records to the configured sink (or
    /// discarding them when none is set — the cache and checkpoint still see
    /// everything).
    ///
    /// # Errors
    ///
    /// Returns spec-validation, cache/sink/checkpoint I/O errors, and — under
    /// the default fail-fast policy — the first failing point's error (the
    /// failing shard is still completed first so its successes are cached).
    /// Under [`keep_going`](Self::keep_going) failing points are reported in
    /// [`StreamOutcome::failures`] instead.
    pub fn run(mut self) -> Result<StreamOutcome> {
        match self.sink.take() {
            Some(sink) => self.run_with(sink),
            None => self.run_with(&mut DiscardSink),
        }
    }

    /// Runs the sweep and returns every record in memory, in expansion order
    /// — the ergonomic path for sweeps small enough to hold in a `Vec`. A
    /// sink configured via [`sink`](Self::sink) still receives every record.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run). Additionally refuses to *resume* from a
    /// [`checkpoint`](Self::checkpoint) that already records completed shards
    /// — skipped shards emit nothing, so the returned `Vec` would silently be
    /// missing their records, breaking this method's every-record contract.
    /// (A first run that merely *writes* a checkpoint is fine; to resume, use
    /// [`run`](Self::run) with a durable, appendable sink.)
    pub fn run_collect(mut self) -> Result<SweepOutcome> {
        if let Some(path) = &self.checkpoint {
            if path.exists() {
                let (_, completed) = Checkpoint::load(path)?;
                if !completed.is_empty() {
                    return Err(crate::error::ExploreError::checkpoint(format!(
                        "`{}` records {} completed shards, which run_collect would skip \
                         without collecting; resume with run() and a durable sink instead",
                        path.display(),
                        completed.len()
                    )));
                }
            }
        }
        let mut records = VecSink::new();
        let stats = {
            let mut tee = CollectTee {
                primary: &mut records,
                secondary: self.sink.take(),
            };
            self.run_with(&mut tee)?.stats
        };
        Ok(SweepOutcome {
            records: records.into_records(),
            stats,
        })
    }

    fn run_with(self, sink: &mut dyn RecordSink) -> Result<StreamOutcome> {
        let Self {
            spec,
            cache,
            options,
            sink: _,
            mut progress,
            checkpoint,
            lease_dir,
            lease,
            artifacts,
            artifact_budget,
        } = self;
        let local_store;
        let artifacts: &std::sync::Mutex<ArtifactStore> = match &artifacts {
            Some(shared) => shared,
            None => {
                local_store = std::sync::Mutex::new(ArtifactStore::new(artifact_budget));
                &local_store
            }
        };
        let mut checkpoint = match checkpoint {
            Some(path) => {
                // Validate before computing the header, so the checkpoint is
                // bound to a well-formed expansion.
                spec.validate()?;
                let total = spec.point_count()?;
                Some(Checkpoint::resume(
                    path,
                    &CheckpointHeader::for_sweep(spec, &options, total),
                )?)
            }
            None => None,
        };
        let mut callback = |shard: &ShardProgress| {
            if let Some(f) = progress.as_mut() {
                f(shard);
            }
        };
        if let Some(dir) = lease_dir {
            let ledger = LeaseLedger::open(dir, lease)?;
            return execute_coexec(
                spec,
                cache.as_deref(),
                &options,
                sink,
                &mut callback,
                checkpoint.as_mut(),
                &ledger,
                artifacts,
            );
        }
        execute(
            spec,
            cache.as_deref(),
            &options,
            sink,
            &mut callback,
            checkpoint.as_mut(),
            artifacts,
        )
    }
}

impl CheckpointHeader {
    /// The header a sweep of `spec` under `options` writes (and expects).
    pub fn for_sweep(spec: &SweepSpec, options: &StreamOptions, total_points: usize) -> Self {
        CheckpointHeader {
            version: crate::checkpoint::CHECKPOINT_VERSION,
            spec_key: crate::checkpoint::spec_fingerprint(spec),
            shard_size: effective_shard_size(options, total_points),
            total_points,
            keep_going: options.error_policy == ErrorPolicy::KeepGoing,
        }
    }
}

/// Sink used by [`ExploreSession::run`] when none is configured.
struct DiscardSink;

impl RecordSink for DiscardSink {
    fn accept(&mut self, _record: crate::record::SweepRecord) -> Result<()> {
        Ok(())
    }
}

/// Tee used by [`ExploreSession::run_collect`]: collects into a `VecSink`
/// while forwarding to the user's sink, if any. (Two lifetimes: the
/// collection buffer is function-local while the user's sink carries the
/// session lifetime.)
struct CollectTee<'s, 'a> {
    primary: &'s mut VecSink,
    secondary: Option<&'a mut (dyn RecordSink + 'a)>,
}

impl RecordSink for CollectTee<'_, '_> {
    fn accept(&mut self, record: crate::record::SweepRecord) -> Result<()> {
        if let Some(sink) = self.secondary.as_deref_mut() {
            sink.accept(record.clone())?;
        }
        self.primary.accept(record)
    }

    fn flush_shard(&mut self) -> Result<()> {
        if let Some(sink) = self.secondary.as_deref_mut() {
            sink.flush_shard()?;
        }
        self.primary.flush_shard()
    }

    fn sync(&mut self) -> Result<()> {
        if let Some(sink) = self.secondary.as_deref_mut() {
            sink.sync()?;
        }
        self.primary.sync()
    }

    fn finish(&mut self) -> Result<()> {
        if let Some(sink) = self.secondary.as_deref_mut() {
            sink.finish()?;
        }
        self.primary.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{DirCache, PackedSegmentCache};
    use crate::sink::JsonlSink;
    use crate::spec::ArchFamily;

    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "simphony-session-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn run_collect_tees_into_a_configured_sink() {
        let dir = scratch("tee");
        let path = dir.join("records.jsonl");
        let spec = SweepSpec::new("tee").with_wavelengths(vec![1, 2]);
        let mut sink = JsonlSink::create(&path).unwrap();
        let outcome = ExploreSession::new(&spec)
            .sink(&mut sink)
            .run_collect()
            .unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(
            crate::record::read_jsonl(&path).unwrap(),
            outcome.records,
            "the configured sink received every collected record"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sessions_accept_any_backend() {
        let dir = scratch("backend");
        let spec = SweepSpec::new("backend").with_wavelengths(vec![1, 2]);
        let cache = PackedSegmentCache::open(dir.join("packed")).unwrap();
        let cold = ExploreSession::new(&spec)
            .cache(cache)
            .run_collect()
            .unwrap();
        assert_eq!(cold.stats.misses, 2);
        // The session flushed the packed cache at the shard boundary, so a
        // fresh handle resumes warm.
        let cache = PackedSegmentCache::open(dir.join("packed")).unwrap();
        assert_eq!(cache.len().unwrap(), 2);
        let warm = ExploreSession::new(&spec)
            .cache(cache)
            .run_collect()
            .unwrap();
        assert_eq!(warm.stats.hits, 2);
        assert_eq!(warm.records, cold.records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_reruns_skip_everything_and_replay_failures() {
        let dir = scratch("ckpt");
        let ckpt = dir.join("sweep.ckpt");
        // tempo λ1, tempo λ2 succeed; butterfly λ1, λ2 fail (height 6).
        let spec = SweepSpec::new("ckpt")
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::Butterfly])
            .with_core_dims(vec![6])
            .with_wavelengths(vec![1, 2]);
        let cache = DirCache::open(dir.join("cache")).unwrap();
        let first = ExploreSession::new(&spec)
            .cache(cache.clone())
            .chunk_size(2)
            .keep_going()
            .checkpoint(&ckpt)
            .run()
            .unwrap();
        assert_eq!(first.failures.len(), 2);
        assert_eq!(first.replayed_failures, 0);
        assert_eq!(first.skipped_points, 0);

        // The re-run touches nothing: no cache reads, no simulation, no
        // re-attempt of the recorded failures.
        let rerun = ExploreSession::new(&spec)
            .cache(cache)
            .chunk_size(2)
            .keep_going()
            .checkpoint(&ckpt)
            .run()
            .unwrap();
        assert_eq!(rerun.skipped_points, 4);
        assert_eq!(rerun.stats, crate::CacheStats { hits: 0, misses: 0 });
        assert_eq!(rerun.replayed_failures, 2);
        assert_eq!(
            rerun.failures.iter().map(|f| f.index).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(rerun.failures[0].error.to_string().contains("power-of-two"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_collect_refuses_to_resume_past_completed_shards() {
        // Skipped shards emit nothing, so a resumed run_collect would return
        // a silently incomplete Vec; it must refuse instead.
        let dir = scratch("collect-resume");
        let ckpt = dir.join("sweep.ckpt");
        let spec = SweepSpec::new("collect-resume").with_wavelengths(vec![1, 2]);
        // First run (nothing recorded yet) is fine and collects everything.
        let first = ExploreSession::new(&spec)
            .checkpoint(&ckpt)
            .run_collect()
            .unwrap();
        assert_eq!(first.records.len(), 2);
        let err = ExploreSession::new(&spec)
            .checkpoint(&ckpt)
            .run_collect()
            .unwrap_err();
        assert!(err.to_string().contains("run_collect would skip"));
        // run() remains the supported resume path.
        let rerun = ExploreSession::new(&spec).checkpoint(&ckpt).run().unwrap();
        assert_eq!(rerun.skipped_points, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_checkpoint_for_a_different_sweep_is_rejected() {
        let dir = scratch("ckpt-mismatch");
        let ckpt = dir.join("sweep.ckpt");
        let spec = SweepSpec::new("a").with_wavelengths(vec![1, 2]);
        ExploreSession::new(&spec).checkpoint(&ckpt).run().unwrap();
        // Different spec content → refuse; different chunk size → refuse.
        let other = SweepSpec::new("b").with_wavelengths(vec![1, 2]);
        assert!(ExploreSession::new(&other).checkpoint(&ckpt).run().is_err());
        assert!(ExploreSession::new(&spec)
            .chunk_size(1)
            .checkpoint(&ckpt)
            .run()
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
