//! Pareto-frontier extraction over sweep records.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{ExploreError, Result};
use crate::record::SweepRecord;

/// A minimization objective over [`SweepRecord`] metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize total energy.
    Energy,
    /// Minimize execution time.
    Latency,
    /// Minimize average power.
    Power,
    /// Minimize chip area.
    Area,
    /// Minimize the energy-delay product.
    Edp,
}

impl Objective {
    /// Every objective, in a stable order.
    pub const ALL: [Objective; 5] = [
        Objective::Energy,
        Objective::Latency,
        Objective::Power,
        Objective::Area,
        Objective::Edp,
    ];

    /// Short lowercase name used on the command line.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Energy => "energy",
            Objective::Latency => "latency",
            Objective::Power => "power",
            Objective::Area => "area",
            Objective::Edp => "edp",
        }
    }

    /// Parses an objective from its [`name`](Self::name).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|o| o.name() == name)
    }

    /// Parses a comma-separated objective list (e.g. `"energy,latency"`).
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] on an empty list or unknown name.
    pub fn parse_list(text: &str) -> Result<Vec<Objective>> {
        let objectives: Vec<Objective> = text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| {
                Objective::parse(name).ok_or_else(|| {
                    ExploreError::invalid_spec(format!(
                        "unknown objective `{name}` (expected one of: {})",
                        Objective::ALL.map(Objective::name).join(", ")
                    ))
                })
            })
            .collect::<Result<_>>()?;
        if objectives.is_empty() {
            return Err(ExploreError::invalid_spec("no objectives given"));
        }
        Ok(objectives)
    }

    /// The metric this objective minimizes.
    pub fn value(self, record: &SweepRecord) -> f64 {
        match self {
            Objective::Energy => record.energy_uj,
            Objective::Latency => record.time_ms,
            Objective::Power => record.power_w,
            Objective::Area => record.area_mm2,
            Objective::Edp => record.edp_uj_ms,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `candidate` dominates `other`: no worse in every objective and
/// strictly better in at least one.
///
/// NaN poisons this relation — every comparison against a NaN metric is
/// false, so a NaN record can never be dominated and would silently join
/// every frontier. [`pareto_front`] therefore rejects non-finite objective
/// values up front; callers comparing records directly should do the same.
pub fn dominates(candidate: &SweepRecord, other: &SweepRecord, objectives: &[Objective]) -> bool {
    let mut strictly_better = false;
    for objective in objectives {
        let a = objective.value(candidate);
        let b = objective.value(other);
        if a > b {
            return false;
        }
        if a < b {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the non-dominated records, preserving input order.
///
/// Ties (records with identical objective vectors) are all kept: neither
/// strictly beats the other, and dropping one would hide a distinct
/// configuration reaching the same operating point.
///
/// # Errors
///
/// Returns [`ExploreError::NonFiniteMetric`] when any record carries a NaN or
/// infinite value in one of the requested objectives. A NaN record can never
/// be dominated ([`dominates`] returns false for every comparison against
/// it), so without this check it would silently land on every frontier.
pub fn pareto_front(records: &[SweepRecord], objectives: &[Objective]) -> Result<Vec<SweepRecord>> {
    for record in records {
        for &objective in objectives {
            let value = objective.value(record);
            if !value.is_finite() {
                return Err(ExploreError::NonFiniteMetric {
                    index: record.point.index,
                    objective: objective.name(),
                    value,
                });
            }
        }
    }
    Ok(records
        .iter()
        .filter(|candidate| {
            !records
                .iter()
                .any(|other| dominates(other, candidate, objectives))
        })
        .cloned()
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use std::collections::BTreeMap;

    fn record(index: usize, energy_uj: f64, time_ms: f64) -> SweepRecord {
        let mut point = SweepSpec::new("p").expand().unwrap().remove(0);
        point.index = index;
        SweepRecord {
            point,
            energy_uj,
            cycles: 1,
            time_ms,
            power_w: 1.0,
            area_mm2: 1.0,
            edp_uj_ms: energy_uj * time_ms,
            glb_blocks: 1,
            energy_by_kind_uj: BTreeMap::new(),
        }
    }

    #[test]
    fn front_keeps_only_non_dominated_points() {
        let records = vec![
            record(0, 1.0, 4.0), // on the front
            record(1, 2.0, 2.0), // on the front
            record(2, 4.0, 1.0), // on the front
            record(3, 3.0, 3.0), // dominated by #1
            record(4, 2.0, 2.5), // dominated by #1
        ];
        let objectives = [Objective::Energy, Objective::Latency];
        let front = pareto_front(&records, &objectives).unwrap();
        let kept: Vec<usize> = front.iter().map(|r| r.point.index).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn single_objective_front_is_the_minimum() {
        let records = vec![
            record(0, 3.0, 1.0),
            record(1, 1.0, 9.0),
            record(2, 2.0, 1.0),
        ];
        let front = pareto_front(&records, &[Objective::Energy]).unwrap();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].point.index, 1);
    }

    #[test]
    fn exact_ties_are_all_kept() {
        let records = vec![record(0, 1.0, 1.0), record(1, 1.0, 1.0)];
        let front = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap();
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn nan_metrics_are_rejected_not_silently_enthroned() {
        // Before the fix, the NaN record could never be dominated and joined
        // every frontier despite being strictly useless.
        let records = vec![record(0, 1.0, 1.0), record(1, f64::NAN, 0.5)];
        let err = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap_err();
        match err {
            ExploreError::NonFiniteMetric {
                index,
                objective,
                value,
            } => {
                assert_eq!(index, 1);
                assert_eq!(objective, "energy");
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteMetric, got {other}"),
        }
    }

    #[test]
    fn infinite_metrics_are_rejected_too() {
        let records = vec![record(0, 1.0, 1.0), record(1, f64::INFINITY, 0.5)];
        assert!(pareto_front(&records, &[Objective::Energy]).is_err());
        let records = vec![record(0, 1.0, f64::NEG_INFINITY)];
        assert!(pareto_front(&records, &[Objective::Latency]).is_err());
    }

    #[test]
    fn non_finite_values_outside_requested_objectives_are_ignored() {
        // Only the objectives actually being ranked matter: a NaN in an
        // unrelated metric must not block extraction over finite ones.
        let mut poisoned = record(1, 2.0, 2.0);
        poisoned.power_w = f64::NAN;
        let records = vec![record(0, 1.0, 1.0), poisoned];
        let front = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].point.index, 0);
        assert!(pareto_front(&records, &[Objective::Power]).is_err());
    }

    #[test]
    fn objective_lists_parse_and_reject() {
        let parsed = Objective::parse_list("energy, latency").unwrap();
        assert_eq!(parsed, vec![Objective::Energy, Objective::Latency]);
        assert!(Objective::parse_list("energy,bogus").is_err());
        assert!(Objective::parse_list("").is_err());
    }
}
