//! Pareto-frontier extraction over sweep and serving records.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{ExploreError, Result};
use crate::record::SweepRecord;

/// A minimization objective over record metrics.
///
/// The first five objectives are single-inference metrics carried by
/// [`SweepRecord`]; the last three are serving-level metrics carried by
/// `simphony-traffic`'s serving records. No record schema carries all eight —
/// [`ParetoRecord::objective_value`] returns `None` for the ones outside its
/// schema, and [`pareto_front`] turns that into a clear
/// [`ExploreError::MissingObjective`] listing what *is* available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize total energy.
    Energy,
    /// Minimize execution time.
    Latency,
    /// Minimize average power.
    Power,
    /// Minimize chip area.
    Area,
    /// Minimize the energy-delay product.
    Edp,
    /// Minimize the p99 sojourn latency of a serving run.
    P99Latency,
    /// Maximize serving throughput. Ranked internally as the *negated*
    /// throughput so the frontier machinery stays a pure minimizer.
    Throughput,
    /// Minimize the energy per completed request of a serving run.
    EnergyPerRequest,
}

impl Objective {
    /// Every objective, in a stable order.
    pub const ALL: [Objective; 8] = [
        Objective::Energy,
        Objective::Latency,
        Objective::Power,
        Objective::Area,
        Objective::Edp,
        Objective::P99Latency,
        Objective::Throughput,
        Objective::EnergyPerRequest,
    ];

    /// Short lowercase name used on the command line.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Energy => "energy",
            Objective::Latency => "latency",
            Objective::Power => "power",
            Objective::Area => "area",
            Objective::Edp => "edp",
            Objective::P99Latency => "p99_latency",
            Objective::Throughput => "throughput",
            Objective::EnergyPerRequest => "energy_per_request",
        }
    }

    /// Parses an objective from its [`name`](Self::name).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|o| o.name() == name)
    }

    /// Parses a comma-separated objective list (e.g. `"energy,latency"`).
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] on an empty list or unknown name.
    pub fn parse_list(text: &str) -> Result<Vec<Objective>> {
        let objectives: Vec<Objective> = text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| {
                Objective::parse(name).ok_or_else(|| {
                    ExploreError::invalid_spec(format!(
                        "unknown objective `{name}` (expected one of: {})",
                        Objective::ALL.map(Objective::name).join(", ")
                    ))
                })
            })
            .collect::<Result<_>>()?;
        if objectives.is_empty() {
            return Err(ExploreError::invalid_spec("no objectives given"));
        }
        Ok(objectives)
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A record type whose metrics can be ranked on a Pareto frontier.
///
/// Implementations return the *minimization* value of every objective their
/// schema carries ([`Objective::Throughput`] is a maximization metric, so its
/// value is the negated throughput) and `None` for the rest, which
/// [`pareto_front`] reports as [`ExploreError::MissingObjective`].
pub trait ParetoRecord {
    /// The minimization value of `objective`, or `None` when this record type
    /// does not carry it.
    fn objective_value(&self, objective: Objective) -> Option<f64>;

    /// Zero-based point index, used in error messages and tie-breaking.
    fn record_index(&self) -> usize;
}

impl ParetoRecord for SweepRecord {
    fn objective_value(&self, objective: Objective) -> Option<f64> {
        match objective {
            Objective::Energy => Some(self.energy_uj),
            Objective::Latency => Some(self.time_ms),
            Objective::Power => Some(self.power_w),
            Objective::Area => Some(self.area_mm2),
            Objective::Edp => Some(self.edp_uj_ms),
            Objective::P99Latency | Objective::Throughput | Objective::EnergyPerRequest => None,
        }
    }

    fn record_index(&self) -> usize {
        self.point.index
    }
}

/// Whether `candidate` dominates `other`: no worse in every objective and
/// strictly better in at least one.
///
/// NaN poisons this relation — every comparison against a NaN metric is
/// false, so a NaN record can never be dominated and would silently join
/// every frontier. An objective absent from the record schema behaves like
/// NaN here (all comparisons false). [`pareto_front`] therefore rejects
/// non-finite and missing objective values up front; callers comparing
/// records directly should do the same.
pub fn dominates<R: ParetoRecord>(candidate: &R, other: &R, objectives: &[Objective]) -> bool {
    let mut strictly_better = false;
    for &objective in objectives {
        let a = candidate.objective_value(objective).unwrap_or(f64::NAN);
        let b = other.objective_value(objective).unwrap_or(f64::NAN);
        if a > b {
            return false;
        }
        if a < b {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the non-dominated records, preserving input order.
///
/// Ties (records with identical objective vectors) are all kept: neither
/// strictly beats the other, and dropping one would hide a distinct
/// configuration reaching the same operating point.
///
/// Complexity scales with the objective count: one objective is a linear
/// minimum scan, two objectives run Kung's sort-based sweep in O(n log n),
/// three objectives run the divide-and-conquer sweep (split on the first
/// objective, marry the halves with a 2-D sweep) in O(n log² n), and four or
/// more fall back to the general pairwise O(n²) check. All paths keep exactly
/// the same records — the faster ones are pure implementations of the same
/// dominance relation, property-tested against the naive algorithm on
/// randomized inputs.
///
/// # Errors
///
/// Returns [`ExploreError::MissingObjective`] when the record type does not
/// carry a requested objective (e.g. `p99_latency` over sweep records), and
/// [`ExploreError::NonFiniteMetric`] when any record carries a NaN or
/// infinite value in one of the requested objectives — a NaN record can never
/// be dominated, so without this check it would silently land on every
/// frontier.
pub fn pareto_front<R: ParetoRecord + Clone>(
    records: &[R],
    objectives: &[Objective],
) -> Result<Vec<R>> {
    // Validate and extract one value column per objective up front, so the
    // mask algorithms below work on plain floats.
    let mut columns: Vec<Vec<f64>> = objectives
        .iter()
        .map(|_| Vec::with_capacity(records.len()))
        .collect();
    for record in records {
        for (column, &objective) in columns.iter_mut().zip(objectives) {
            let value = record.objective_value(objective).ok_or_else(|| {
                ExploreError::MissingObjective {
                    objective: objective.name(),
                    available: Objective::ALL
                        .into_iter()
                        .filter(|o| record.objective_value(*o).is_some())
                        .map(Objective::name)
                        .collect(),
                }
            })?;
            if !value.is_finite() {
                return Err(ExploreError::NonFiniteMetric {
                    index: record.record_index(),
                    objective: objective.name(),
                    value,
                });
            }
            column.push(value);
        }
    }
    let keep = match &columns[..] {
        [] => return Err(ExploreError::invalid_spec("no objectives given")),
        [single] => min_scan_mask(single),
        [first, second] => kung_mask(first, second),
        [first, second, third] => kung3_mask(first, second, third),
        _ => naive_mask(&columns),
    };
    Ok(records
        .iter()
        .zip(&keep)
        .filter(|(_, &kept)| kept)
        .map(|(record, _)| record.clone())
        .collect())
}

/// Single objective: a record is non-dominated iff its value is the minimum
/// (all minima are kept — they tie). O(n).
fn min_scan_mask(values: &[f64]) -> Vec<bool> {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    values.iter().map(|&v| v == min).collect()
}

/// Two objectives: Kung's sort-based sweep, expressed as the shared
/// subset sweep over the full index range. O(n log n).
fn kung_mask(xs: &[f64], ys: &[f64]) -> Vec<bool> {
    let mut keep = vec![true; xs.len()];
    let order: Vec<usize> = (0..xs.len()).collect();
    kung2_subset(&order, xs, ys, &mut keep);
    keep
}

/// The 2-D dominance sweep over a subset of indices: clears `keep` for every
/// subset member dominated *within the subset* under the `(ys, zs)` pair.
///
/// Indices are sorted by `ys` and scanned once, carrying the minimum `zs`
/// value seen among members with a *strictly smaller* `ys`. Within a group
/// sharing the same `ys` value, only the members attaining the group's `zs`
/// minimum can survive (any other is dominated by them), and the whole group
/// falls if an earlier member already reached that minimum or better —
/// `prev_min <= z` means some member with a strictly smaller `ys` is no worse
/// in `zs`, which dominates. Exact ties all survive together, preserving the
/// documented tie contract.
///
/// Grouping uses *float* equality while the sort uses `total_cmp` (the only
/// total order available): the two disagree on `-0.0` vs `0.0`, which
/// dominance treats as equal but `total_cmp` orders apart. `total_cmp`
/// refines float ordering, so a float-equal group is still contiguous after
/// the sort — but it is *not* necessarily sorted by `zs` across the
/// `-0.0`/`0.0` seam, which is why the group minimum is computed by scanning
/// the group rather than read off its first element.
fn kung2_subset(subset: &[usize], ys: &[f64], zs: &[f64], keep: &mut [bool]) {
    let mut order: Vec<usize> = subset.to_vec();
    order.sort_by(|&a, &b| ys[a].total_cmp(&ys[b]).then(a.cmp(&b)));
    let mut prev_min = f64::INFINITY;
    let mut cursor = 0;
    while cursor < order.len() {
        // The contiguous group of members whose `ys` value is float-equal to
        // the cursor's.
        let y = ys[order[cursor]];
        let group_end = order[cursor..]
            .iter()
            .position(|&i| ys[i] > y)
            .map_or(order.len(), |offset| cursor + offset);
        let group = &order[cursor..group_end];
        let group_min = group.iter().map(|&i| zs[i]).fold(f64::INFINITY, f64::min);
        if group_min < prev_min {
            for &i in group {
                if zs[i] != group_min {
                    keep[i] = false;
                }
            }
            prev_min = group_min;
        } else {
            for &i in group {
                keep[i] = false;
            }
        }
        cursor = group_end;
    }
}

/// Three objectives: divide-and-conquer sweep. Indices are sorted by the
/// first objective, then recursively split at a float-equal-group boundary
/// (so every cross-half pair differs *strictly* in the first objective); each
/// half is solved independently, and the halves are married with a 2-D sweep
/// over the remaining two objectives. A slice sharing one first-objective
/// value degenerates to the plain 2-D problem. O(n log² n).
fn kung3_mask(xs: &[f64], ys: &[f64], zs: &[f64]) -> Vec<bool> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]).then(a.cmp(&b)));
    let mut keep = vec![true; xs.len()];
    solve3(&order, xs, ys, zs, &mut keep);
    keep
}

/// Clears `keep` for every member of `order` (sorted by `xs` under
/// `total_cmp`) dominated by another member of `order`.
fn solve3(order: &[usize], xs: &[f64], ys: &[f64], zs: &[f64], keep: &mut [bool]) {
    if order.len() <= 1 {
        return;
    }
    // One float-equal x group: dominance degenerates to the (y, z) plane,
    // where strictness must come from y or z since x ties everywhere.
    let x0 = xs[order[0]];
    if order.iter().all(|&i| xs[i] == x0) {
        kung2_subset(order, ys, zs, keep);
        return;
    }
    // Split at the float-equal-group boundary nearest the middle, never
    // through a group: every pair straddling the boundary then differs
    // strictly in x, so the marry step needs no equal-x special case.
    let mid = order.len() / 2;
    let xm = xs[order[mid]];
    let group_start = order[..mid]
        .iter()
        .rposition(|&i| xs[i] != xm)
        .map_or(0, |p| p + 1);
    let group_end = order[mid..]
        .iter()
        .position(|&i| xs[i] != xm)
        .map_or(order.len(), |p| mid + p);
    let boundary = if group_start == 0 {
        group_end
    } else if group_end == order.len() || mid - group_start <= group_end - mid {
        group_start
    } else {
        group_end
    };
    let (low, high) = order.split_at(boundary);
    solve3(low, xs, ys, zs, keep);
    solve3(high, xs, ys, zs, keep);
    marry3(low, high, ys, zs, keep);
}

/// Clears `keep` for survivors of `high` dominated by a survivor of `low`,
/// where every member of `low` has a *strictly smaller* x than every member
/// of `high` (guaranteed by the group-boundary split). Strictness in x is
/// already settled, so `a` dominates `b` iff `a.y <= b.y && a.z <= b.z` —
/// a single merged sweep over y carrying the running minimum z of `low`.
///
/// Only `low`'s survivors are consulted: if `a1 ∈ low` is dominated by
/// `a2 ∈ low`, then `a2` is no worse than `a1` everywhere, so anything `a1`
/// would eliminate `a2` eliminates too.
fn marry3(low: &[usize], high: &[usize], ys: &[f64], zs: &[f64], keep: &mut [bool]) {
    let low_survivors: Vec<usize> = low.iter().copied().filter(|&i| keep[i]).collect();
    if low_survivors.is_empty() {
        return;
    }
    let high_survivors: Vec<usize> = high.iter().copied().filter(|&i| keep[i]).collect();
    if high_survivors.is_empty() {
        return;
    }
    let mut merged: Vec<(usize, bool)> = low_survivors
        .iter()
        .map(|&i| (i, true))
        .chain(high_survivors.iter().map(|&i| (i, false)))
        .collect();
    merged.sort_by(|&(a, _), &(b, _)| ys[a].total_cmp(&ys[b]).then(a.cmp(&b)));
    let mut min_z = f64::INFINITY;
    let mut cursor = 0;
    while cursor < merged.len() {
        // Process one float-equal y group at a time: a `low` member with a
        // float-equal y satisfies `a.y <= b.y`, so its z must join the
        // running minimum *before* the group's `high` members are tested —
        // and `total_cmp` may order `-0.0` after a high member's `0.0`.
        let y = ys[merged[cursor].0];
        let group_end = merged[cursor..]
            .iter()
            .position(|&(i, _)| ys[i] > y)
            .map_or(merged.len(), |offset| cursor + offset);
        for &(i, is_low) in &merged[cursor..group_end] {
            if is_low {
                min_z = min_z.min(zs[i]);
            }
        }
        for &(i, is_low) in &merged[cursor..group_end] {
            if !is_low && min_z <= zs[i] {
                keep[i] = false;
            }
        }
        cursor = group_end;
    }
}

/// Four or more objectives: the general pairwise dominance check. O(n²).
fn naive_mask(columns: &[Vec<f64>]) -> Vec<bool> {
    let n = columns.first().map_or(0, Vec::len);
    let dominated_by = |a: usize, b: usize| {
        // Whether record `b` dominates record `a`.
        let mut strictly_better = false;
        for column in columns {
            if column[b] > column[a] {
                return false;
            }
            if column[b] < column[a] {
                strictly_better = true;
            }
        }
        strictly_better
    };
    (0..n)
        .map(|a| !(0..n).any(|b| dominated_by(a, b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use std::collections::BTreeMap;

    fn record(index: usize, energy_uj: f64, time_ms: f64) -> SweepRecord {
        let mut point = SweepSpec::new("p").expand().unwrap().remove(0);
        point.index = index;
        SweepRecord {
            point,
            energy_uj,
            cycles: 1,
            time_ms,
            power_w: 1.0,
            area_mm2: 1.0,
            edp_uj_ms: energy_uj * time_ms,
            glb_blocks: 1,
            energy_by_kind_uj: BTreeMap::new(),
        }
    }

    #[test]
    fn front_keeps_only_non_dominated_points() {
        let records = vec![
            record(0, 1.0, 4.0), // on the front
            record(1, 2.0, 2.0), // on the front
            record(2, 4.0, 1.0), // on the front
            record(3, 3.0, 3.0), // dominated by #1
            record(4, 2.0, 2.5), // dominated by #1
        ];
        let objectives = [Objective::Energy, Objective::Latency];
        let front = pareto_front(&records, &objectives).unwrap();
        let kept: Vec<usize> = front.iter().map(|r| r.point.index).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn single_objective_front_is_the_minimum() {
        let records = vec![
            record(0, 3.0, 1.0),
            record(1, 1.0, 9.0),
            record(2, 2.0, 1.0),
        ];
        let front = pareto_front(&records, &[Objective::Energy]).unwrap();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].point.index, 1);
    }

    #[test]
    fn exact_ties_are_all_kept() {
        let records = vec![record(0, 1.0, 1.0), record(1, 1.0, 1.0)];
        let front = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap();
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn nan_metrics_are_rejected_not_silently_enthroned() {
        // Before the fix, the NaN record could never be dominated and joined
        // every frontier despite being strictly useless.
        let records = vec![record(0, 1.0, 1.0), record(1, f64::NAN, 0.5)];
        let err = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap_err();
        match err {
            ExploreError::NonFiniteMetric {
                index,
                objective,
                value,
            } => {
                assert_eq!(index, 1);
                assert_eq!(objective, "energy");
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteMetric, got {other}"),
        }
    }

    #[test]
    fn infinite_metrics_are_rejected_too() {
        let records = vec![record(0, 1.0, 1.0), record(1, f64::INFINITY, 0.5)];
        assert!(pareto_front(&records, &[Objective::Energy]).is_err());
        let records = vec![record(0, 1.0, f64::NEG_INFINITY)];
        assert!(pareto_front(&records, &[Objective::Latency]).is_err());
    }

    #[test]
    fn non_finite_values_outside_requested_objectives_are_ignored() {
        // Only the objectives actually being ranked matter: a NaN in an
        // unrelated metric must not block extraction over finite ones.
        let mut poisoned = record(1, 2.0, 2.0);
        poisoned.power_w = f64::NAN;
        let records = vec![record(0, 1.0, 1.0), poisoned];
        let front = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].point.index, 0);
        assert!(pareto_front(&records, &[Objective::Power]).is_err());
    }

    #[test]
    fn serving_objectives_over_sweep_records_error_with_the_available_list() {
        // Sweep records carry no serving metrics: the error must name the
        // absent objective and list the ones this schema does carry, so the
        // CLI message is actionable instead of a serde blob.
        let records = vec![record(0, 1.0, 1.0)];
        let err = pareto_front(&records, &[Objective::Energy, Objective::P99Latency]).unwrap_err();
        match err {
            ExploreError::MissingObjective {
                objective,
                available,
            } => {
                assert_eq!(objective, "p99_latency");
                assert_eq!(available, vec!["energy", "latency", "power", "area", "edp"]);
            }
            other => panic!("expected MissingObjective, got {other}"),
        }
        let rendered = format!(
            "{}",
            pareto_front(&records, &[Objective::Throughput]).unwrap_err()
        );
        assert!(rendered.contains("`throughput`"), "names the objective");
        assert!(rendered.contains("energy, latency"), "lists what exists");
    }

    /// The reference implementation the fast paths are verified against: the
    /// plain pairwise dominance filter, kept verbatim from before the
    /// sort-based sweeps landed.
    fn naive_front(records: &[SweepRecord], objectives: &[Objective]) -> Vec<usize> {
        records
            .iter()
            .filter(|candidate| {
                !records
                    .iter()
                    .any(|other| dominates(other, candidate, objectives))
            })
            .map(|r| r.point.index)
            .collect()
    }

    fn front_indices(records: &[SweepRecord], objectives: &[Objective]) -> Vec<usize> {
        pareto_front(records, objectives)
            .unwrap()
            .iter()
            .map(|r| r.point.index)
            .collect()
    }

    #[test]
    fn kungs_sweep_matches_the_naive_front_on_seeded_random_records() {
        // Property test over seeded SplitMix64 record sets: the O(n log n)
        // two-objective sweep (and the single-objective min scan) must keep
        // exactly the records the O(n²) filter keeps, in the same order.
        // Quantized values force plenty of exact ties and duplicate rows.
        use simphony_onn::SplitMix64;
        let mut rng = SplitMix64::new(0xD5E5);
        for round in 0..40 {
            let len = 1 + (rng.next_u64() % 120) as usize;
            // Coarser grids in later rounds mean more ties.
            let grid = [1000.0, 16.0, 4.0][round % 3];
            let records: Vec<SweepRecord> = (0..len)
                .map(|i| {
                    // Quantized to force ties; occasionally sign-flipped so
                    // the stream contains negatives and `-0.0` (the float
                    // vs. total_cmp seam the sweep must handle).
                    let value = |rng: &mut SplitMix64| {
                        let v = (rng.next_f64() * grid).floor() / grid;
                        if rng.next_u64().is_multiple_of(4) {
                            -v
                        } else {
                            v
                        }
                    };
                    record(i, value(&mut rng), value(&mut rng))
                })
                .collect();
            let two = [Objective::Energy, Objective::Latency];
            assert_eq!(
                front_indices(&records, &two),
                naive_front(&records, &two),
                "round {round}: 2-objective sweep diverged from naive"
            );
            let one = [Objective::Energy];
            assert_eq!(
                front_indices(&records, &one),
                naive_front(&records, &one),
                "round {round}: 1-objective scan diverged from naive"
            );
            // EDP is energy*latency — correlated, which stresses tie groups
            // differently than independent axes.
            let correlated = [Objective::Edp, Objective::Latency];
            assert_eq!(
                front_indices(&records, &correlated),
                naive_front(&records, &correlated),
                "round {round}: correlated objectives diverged from naive"
            );
        }
    }

    #[test]
    fn divide_and_conquer_matches_the_naive_front_on_seeded_random_records() {
        // The 3-objective divide-and-conquer sweep against the O(n²)
        // reference, over the same adversarial value streams as the 2-D
        // property test: quantized grids force duplicate coordinates and
        // whole duplicate rows, sign flips inject negatives and `-0.0`
        // (stressing both the equal-x split guarantee and the marry step's
        // group-before-test ordering across the `-0.0`/`0.0` seam).
        use simphony_onn::SplitMix64;
        let mut rng = SplitMix64::new(0x3D3D);
        for round in 0..40 {
            let len = 1 + (rng.next_u64() % 150) as usize;
            let grid = [1000.0, 16.0, 4.0, 2.0][round % 4];
            let records: Vec<SweepRecord> = (0..len)
                .map(|i| {
                    let value = |rng: &mut SplitMix64| {
                        let v = (rng.next_f64() * grid).floor() / grid;
                        if rng.next_u64().is_multiple_of(4) {
                            -v
                        } else {
                            v
                        }
                    };
                    let mut r = record(i, value(&mut rng), value(&mut rng));
                    r.power_w = value(&mut rng);
                    r
                })
                .collect();
            let three = [Objective::Energy, Objective::Latency, Objective::Power];
            assert_eq!(
                front_indices(&records, &three),
                naive_front(&records, &three),
                "round {round}: 3-objective divide-and-conquer diverged from naive"
            );
            // Correlated third axis (EDP = energy*latency) stresses tie
            // groups that the independent-axis rounds cannot reach.
            let correlated = [Objective::Energy, Objective::Latency, Objective::Edp];
            assert_eq!(
                front_indices(&records, &correlated),
                naive_front(&records, &correlated),
                "round {round}: correlated 3-objective sweep diverged from naive"
            );
        }
    }

    #[test]
    fn four_objectives_still_use_the_general_path_correctly() {
        use simphony_onn::SplitMix64;
        let mut rng = SplitMix64::new(7);
        let records: Vec<SweepRecord> = (0..60)
            .map(|i| {
                let mut r = record(i, rng.next_f64(), rng.next_f64());
                r.power_w = (rng.next_f64() * 8.0).floor();
                r.area_mm2 = (rng.next_f64() * 4.0).floor();
                r
            })
            .collect();
        let objectives = [
            Objective::Energy,
            Objective::Latency,
            Objective::Power,
            Objective::Area,
        ];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
    }

    #[test]
    fn kungs_sweep_handles_duplicate_and_shared_coordinate_groups() {
        // Hand-picked adversarial layout: duplicate points on and off the
        // frontier, ties in one coordinate only, and a dominated record
        // sharing its first objective with a frontier record.
        let records = vec![
            record(0, 1.0, 4.0), // frontier
            record(1, 1.0, 4.0), // exact duplicate: kept too
            record(2, 1.0, 5.0), // same energy, worse latency: dominated
            record(3, 2.0, 4.0), // worse energy, same latency as #0: dominated
            record(4, 2.0, 2.0), // frontier
            record(5, 3.0, 2.0), // same latency as #4, worse energy: dominated
            record(6, 4.0, 1.0), // frontier
            record(7, 4.0, 1.0), // duplicate of a frontier point
            record(8, 5.0, 0.5), // frontier (best latency)
        ];
        let objectives = [Objective::Energy, Objective::Latency];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 1, 4, 6, 7, 8]);
    }

    #[test]
    fn divide_and_conquer_handles_equal_x_planes_and_duplicates() {
        // Whole planes sharing the first objective (the recursion's 2-D
        // degenerate case), duplicates across planes, and a point dominated
        // only across the plane boundary (strict in x, tied in y and z).
        let mut records = vec![
            record(0, 1.0, 4.0), // x=1 plane, frontier
            record(1, 1.0, 4.0), // exact duplicate: kept
            record(2, 1.0, 5.0), // dominated within its plane (worse latency)
            record(3, 2.0, 4.0), // dominated across planes by #0: tied (y,z), worse x
            record(4, 2.0, 3.0), // frontier
            record(5, 2.0, 3.0), // duplicate frontier point
            record(6, 3.0, 1.0), // frontier (best latency at power 1)
        ];
        for r in &mut records {
            r.power_w = 1.0;
        }
        records[2].power_w = 1.0;
        let objectives = [Objective::Energy, Objective::Latency, Objective::Power];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 1, 4, 5, 6]);
    }

    #[test]
    fn negative_zero_and_positive_zero_are_the_same_operating_point() {
        // Dominance compares floats (where -0.0 == 0.0) while the sweep's
        // sort uses total_cmp (where -0.0 < 0.0); the grouping must follow
        // the float semantics or a non-dominated record straddling the
        // -0.0/0.0 seam is silently dropped.
        let objectives = [Objective::Energy, Objective::Latency];
        // A record at (0.0, 3.0) is NOT dominated by (-0.0, 5.0): equal
        // energy, strictly better latency.
        let records = vec![record(0, -0.0, 5.0), record(1, 0.0, 3.0)];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![1]);
        // Exact tie across the seam: both kept.
        let records = vec![record(0, -0.0, 5.0), record(1, 0.0, 5.0)];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 1]);
        // Seam in the second objective: -0.0 and 0.0 latencies tie too.
        let records = vec![
            record(0, 1.0, -0.0),
            record(1, 1.0, 0.0),
            record(2, 2.0, 0.0), // dominated: worse energy, tied latency
        ];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 1]);
        // And a dominated record *behind* the seam, with the frontier point
        // on the -0.0 side.
        let records = vec![
            record(0, -0.0, 3.0),
            record(1, 0.0, 5.0), // dominated: tied energy, worse latency
            record(2, 0.5, 2.0),
        ];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 2]);
        // The seam in the *first* objective of the 3-D sweep: the split must
        // keep -0.0 and 0.0 in one plane or #1 is spuriously eliminated.
        let objectives3 = [Objective::Energy, Objective::Latency, Objective::Power];
        let records = vec![
            record(0, -0.0, 5.0),
            record(1, 0.0, 3.0),
            record(2, 1.0, 1.0),
        ];
        assert_eq!(
            front_indices(&records, &objectives3),
            naive_front(&records, &objectives3)
        );
        assert_eq!(front_indices(&records, &objectives3), vec![1, 2]);
    }

    #[test]
    fn objective_lists_parse_and_reject() {
        let parsed = Objective::parse_list("energy, latency").unwrap();
        assert_eq!(parsed, vec![Objective::Energy, Objective::Latency]);
        let serving = Objective::parse_list("p99_latency,throughput,energy_per_request").unwrap();
        assert_eq!(
            serving,
            vec![
                Objective::P99Latency,
                Objective::Throughput,
                Objective::EnergyPerRequest
            ]
        );
        assert!(Objective::parse_list("energy,bogus").is_err());
        assert!(Objective::parse_list("").is_err());
    }
}
