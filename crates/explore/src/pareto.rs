//! Pareto-frontier extraction over sweep records.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{ExploreError, Result};
use crate::record::SweepRecord;

/// A minimization objective over [`SweepRecord`] metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize total energy.
    Energy,
    /// Minimize execution time.
    Latency,
    /// Minimize average power.
    Power,
    /// Minimize chip area.
    Area,
    /// Minimize the energy-delay product.
    Edp,
}

impl Objective {
    /// Every objective, in a stable order.
    pub const ALL: [Objective; 5] = [
        Objective::Energy,
        Objective::Latency,
        Objective::Power,
        Objective::Area,
        Objective::Edp,
    ];

    /// Short lowercase name used on the command line.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Energy => "energy",
            Objective::Latency => "latency",
            Objective::Power => "power",
            Objective::Area => "area",
            Objective::Edp => "edp",
        }
    }

    /// Parses an objective from its [`name`](Self::name).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|o| o.name() == name)
    }

    /// Parses a comma-separated objective list (e.g. `"energy,latency"`).
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] on an empty list or unknown name.
    pub fn parse_list(text: &str) -> Result<Vec<Objective>> {
        let objectives: Vec<Objective> = text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| {
                Objective::parse(name).ok_or_else(|| {
                    ExploreError::invalid_spec(format!(
                        "unknown objective `{name}` (expected one of: {})",
                        Objective::ALL.map(Objective::name).join(", ")
                    ))
                })
            })
            .collect::<Result<_>>()?;
        if objectives.is_empty() {
            return Err(ExploreError::invalid_spec("no objectives given"));
        }
        Ok(objectives)
    }

    /// The metric this objective minimizes.
    pub fn value(self, record: &SweepRecord) -> f64 {
        match self {
            Objective::Energy => record.energy_uj,
            Objective::Latency => record.time_ms,
            Objective::Power => record.power_w,
            Objective::Area => record.area_mm2,
            Objective::Edp => record.edp_uj_ms,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `candidate` dominates `other`: no worse in every objective and
/// strictly better in at least one.
///
/// NaN poisons this relation — every comparison against a NaN metric is
/// false, so a NaN record can never be dominated and would silently join
/// every frontier. [`pareto_front`] therefore rejects non-finite objective
/// values up front; callers comparing records directly should do the same.
pub fn dominates(candidate: &SweepRecord, other: &SweepRecord, objectives: &[Objective]) -> bool {
    let mut strictly_better = false;
    for objective in objectives {
        let a = objective.value(candidate);
        let b = objective.value(other);
        if a > b {
            return false;
        }
        if a < b {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the non-dominated records, preserving input order.
///
/// Ties (records with identical objective vectors) are all kept: neither
/// strictly beats the other, and dropping one would hide a distinct
/// configuration reaching the same operating point.
///
/// Complexity scales with the objective count: one objective is a linear
/// minimum scan, two objectives run Kung's sort-based sweep in O(n log n)
/// (sort by the first objective, scan with a running minimum of the second),
/// and three or more fall back to the general pairwise O(n²) check. All three
/// paths keep exactly the same records — the faster ones are pure
/// implementations of the same dominance relation, property-tested against
/// the naive algorithm on randomized inputs.
///
/// # Errors
///
/// Returns [`ExploreError::NonFiniteMetric`] when any record carries a NaN or
/// infinite value in one of the requested objectives. A NaN record can never
/// be dominated ([`dominates`] returns false for every comparison against
/// it), so without this check it would silently land on every frontier.
pub fn pareto_front(records: &[SweepRecord], objectives: &[Objective]) -> Result<Vec<SweepRecord>> {
    for record in records {
        for &objective in objectives {
            let value = objective.value(record);
            if !value.is_finite() {
                return Err(ExploreError::NonFiniteMetric {
                    index: record.point.index,
                    objective: objective.name(),
                    value,
                });
            }
        }
    }
    let keep = match objectives {
        [single] => min_scan_mask(records, *single),
        [first, second] => kung_mask(records, *first, *second),
        _ => naive_mask(records, objectives),
    };
    Ok(records
        .iter()
        .zip(&keep)
        .filter(|(_, &kept)| kept)
        .map(|(record, _)| record.clone())
        .collect())
}

/// Single objective: a record is non-dominated iff its value is the minimum
/// (all minima are kept — they tie). O(n).
fn min_scan_mask(records: &[SweepRecord], objective: Objective) -> Vec<bool> {
    let min = records
        .iter()
        .map(|r| objective.value(r))
        .fold(f64::INFINITY, f64::min);
    records.iter().map(|r| objective.value(r) == min).collect()
}

/// Two objectives: Kung's sort-based sweep. Indices are sorted by the first
/// objective and scanned once, carrying the minimum second-objective value
/// seen among records with a *strictly smaller* first objective. Within a
/// group sharing the same first-objective value, only the records attaining
/// the group's second-objective minimum can survive (any other is dominated
/// by them), and the whole group falls if an earlier record already reached
/// that minimum or better — `prev_min <= y` means some record with a strictly
/// smaller first objective is no worse in the second, which dominates. Exact
/// ties all survive together, preserving the documented tie contract.
/// O(n log n).
///
/// Grouping uses *float* equality while the sort uses `total_cmp` (the only
/// total order available): the two disagree on `-0.0` vs `0.0`, which
/// dominance treats as equal but `total_cmp` orders apart. `total_cmp`
/// refines float ordering, so a float-equal group is still contiguous after
/// the sort — but it is *not* necessarily sorted by the second objective
/// across the `-0.0`/`0.0` seam, which is why the group minimum is computed
/// by scanning the group rather than read off its first element.
fn kung_mask(records: &[SweepRecord], first: Objective, second: Objective) -> Vec<bool> {
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by(|&a, &b| {
        first
            .value(&records[a])
            .total_cmp(&first.value(&records[b]))
            .then(a.cmp(&b))
    });
    let mut keep = vec![false; records.len()];
    let mut prev_min = f64::INFINITY;
    let mut cursor = 0;
    while cursor < order.len() {
        // The contiguous group of records whose first-objective value is
        // float-equal to the cursor's.
        let x = first.value(&records[order[cursor]]);
        let group_end = order[cursor..]
            .iter()
            .position(|&i| first.value(&records[i]) > x)
            .map_or(order.len(), |offset| cursor + offset);
        let group = &order[cursor..group_end];
        let group_min = group
            .iter()
            .map(|&index| second.value(&records[index]))
            .fold(f64::INFINITY, f64::min);
        if group_min < prev_min {
            for &index in group {
                if second.value(&records[index]) == group_min {
                    keep[index] = true;
                }
            }
            prev_min = group_min;
        }
        cursor = group_end;
    }
    keep
}

/// Three or more objectives: the general pairwise dominance check. O(n²).
fn naive_mask(records: &[SweepRecord], objectives: &[Objective]) -> Vec<bool> {
    records
        .iter()
        .map(|candidate| {
            !records
                .iter()
                .any(|other| dominates(other, candidate, objectives))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use std::collections::BTreeMap;

    fn record(index: usize, energy_uj: f64, time_ms: f64) -> SweepRecord {
        let mut point = SweepSpec::new("p").expand().unwrap().remove(0);
        point.index = index;
        SweepRecord {
            point,
            energy_uj,
            cycles: 1,
            time_ms,
            power_w: 1.0,
            area_mm2: 1.0,
            edp_uj_ms: energy_uj * time_ms,
            glb_blocks: 1,
            energy_by_kind_uj: BTreeMap::new(),
        }
    }

    #[test]
    fn front_keeps_only_non_dominated_points() {
        let records = vec![
            record(0, 1.0, 4.0), // on the front
            record(1, 2.0, 2.0), // on the front
            record(2, 4.0, 1.0), // on the front
            record(3, 3.0, 3.0), // dominated by #1
            record(4, 2.0, 2.5), // dominated by #1
        ];
        let objectives = [Objective::Energy, Objective::Latency];
        let front = pareto_front(&records, &objectives).unwrap();
        let kept: Vec<usize> = front.iter().map(|r| r.point.index).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn single_objective_front_is_the_minimum() {
        let records = vec![
            record(0, 3.0, 1.0),
            record(1, 1.0, 9.0),
            record(2, 2.0, 1.0),
        ];
        let front = pareto_front(&records, &[Objective::Energy]).unwrap();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].point.index, 1);
    }

    #[test]
    fn exact_ties_are_all_kept() {
        let records = vec![record(0, 1.0, 1.0), record(1, 1.0, 1.0)];
        let front = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap();
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn nan_metrics_are_rejected_not_silently_enthroned() {
        // Before the fix, the NaN record could never be dominated and joined
        // every frontier despite being strictly useless.
        let records = vec![record(0, 1.0, 1.0), record(1, f64::NAN, 0.5)];
        let err = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap_err();
        match err {
            ExploreError::NonFiniteMetric {
                index,
                objective,
                value,
            } => {
                assert_eq!(index, 1);
                assert_eq!(objective, "energy");
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteMetric, got {other}"),
        }
    }

    #[test]
    fn infinite_metrics_are_rejected_too() {
        let records = vec![record(0, 1.0, 1.0), record(1, f64::INFINITY, 0.5)];
        assert!(pareto_front(&records, &[Objective::Energy]).is_err());
        let records = vec![record(0, 1.0, f64::NEG_INFINITY)];
        assert!(pareto_front(&records, &[Objective::Latency]).is_err());
    }

    #[test]
    fn non_finite_values_outside_requested_objectives_are_ignored() {
        // Only the objectives actually being ranked matter: a NaN in an
        // unrelated metric must not block extraction over finite ones.
        let mut poisoned = record(1, 2.0, 2.0);
        poisoned.power_w = f64::NAN;
        let records = vec![record(0, 1.0, 1.0), poisoned];
        let front = pareto_front(&records, &[Objective::Energy, Objective::Latency]).unwrap();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].point.index, 0);
        assert!(pareto_front(&records, &[Objective::Power]).is_err());
    }

    /// The reference implementation the fast paths are verified against: the
    /// plain pairwise dominance filter, kept verbatim from before the
    /// sort-based sweep landed.
    fn naive_front(records: &[SweepRecord], objectives: &[Objective]) -> Vec<usize> {
        records
            .iter()
            .filter(|candidate| {
                !records
                    .iter()
                    .any(|other| dominates(other, candidate, objectives))
            })
            .map(|r| r.point.index)
            .collect()
    }

    fn front_indices(records: &[SweepRecord], objectives: &[Objective]) -> Vec<usize> {
        pareto_front(records, objectives)
            .unwrap()
            .iter()
            .map(|r| r.point.index)
            .collect()
    }

    #[test]
    fn kungs_sweep_matches_the_naive_front_on_seeded_random_records() {
        // Property test over seeded SplitMix64 record sets: the O(n log n)
        // two-objective sweep (and the single-objective min scan) must keep
        // exactly the records the O(n²) filter keeps, in the same order.
        // Quantized values force plenty of exact ties and duplicate rows.
        use simphony_onn::SplitMix64;
        let mut rng = SplitMix64::new(0xD5E5);
        for round in 0..40 {
            let len = 1 + (rng.next_u64() % 120) as usize;
            // Coarser grids in later rounds mean more ties.
            let grid = [1000.0, 16.0, 4.0][round % 3];
            let records: Vec<SweepRecord> = (0..len)
                .map(|i| {
                    // Quantized to force ties; occasionally sign-flipped so
                    // the stream contains negatives and `-0.0` (the float
                    // vs. total_cmp seam the sweep must handle).
                    let value = |rng: &mut SplitMix64| {
                        let v = (rng.next_f64() * grid).floor() / grid;
                        if rng.next_u64().is_multiple_of(4) {
                            -v
                        } else {
                            v
                        }
                    };
                    record(i, value(&mut rng), value(&mut rng))
                })
                .collect();
            let two = [Objective::Energy, Objective::Latency];
            assert_eq!(
                front_indices(&records, &two),
                naive_front(&records, &two),
                "round {round}: 2-objective sweep diverged from naive"
            );
            let one = [Objective::Energy];
            assert_eq!(
                front_indices(&records, &one),
                naive_front(&records, &one),
                "round {round}: 1-objective scan diverged from naive"
            );
            // EDP is energy*latency — correlated, which stresses tie groups
            // differently than independent axes.
            let correlated = [Objective::Edp, Objective::Latency];
            assert_eq!(
                front_indices(&records, &correlated),
                naive_front(&records, &correlated),
                "round {round}: correlated objectives diverged from naive"
            );
        }
    }

    #[test]
    fn kungs_sweep_handles_duplicate_and_shared_coordinate_groups() {
        // Hand-picked adversarial layout: duplicate points on and off the
        // frontier, ties in one coordinate only, and a dominated record
        // sharing its first objective with a frontier record.
        let records = vec![
            record(0, 1.0, 4.0), // frontier
            record(1, 1.0, 4.0), // exact duplicate: kept too
            record(2, 1.0, 5.0), // same energy, worse latency: dominated
            record(3, 2.0, 4.0), // worse energy, same latency as #0: dominated
            record(4, 2.0, 2.0), // frontier
            record(5, 3.0, 2.0), // same latency as #4, worse energy: dominated
            record(6, 4.0, 1.0), // frontier
            record(7, 4.0, 1.0), // duplicate of a frontier point
            record(8, 5.0, 0.5), // frontier (best latency)
        ];
        let objectives = [Objective::Energy, Objective::Latency];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 1, 4, 6, 7, 8]);
    }

    #[test]
    fn negative_zero_and_positive_zero_are_the_same_operating_point() {
        // Dominance compares floats (where -0.0 == 0.0) while the sweep's
        // sort uses total_cmp (where -0.0 < 0.0); the grouping must follow
        // the float semantics or a non-dominated record straddling the
        // -0.0/0.0 seam is silently dropped.
        let objectives = [Objective::Energy, Objective::Latency];
        // A record at (0.0, 3.0) is NOT dominated by (-0.0, 5.0): equal
        // energy, strictly better latency.
        let records = vec![record(0, -0.0, 5.0), record(1, 0.0, 3.0)];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![1]);
        // Exact tie across the seam: both kept.
        let records = vec![record(0, -0.0, 5.0), record(1, 0.0, 5.0)];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 1]);
        // Seam in the second objective: -0.0 and 0.0 latencies tie too.
        let records = vec![
            record(0, 1.0, -0.0),
            record(1, 1.0, 0.0),
            record(2, 2.0, 0.0), // dominated: worse energy, tied latency
        ];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 1]);
        // And a dominated record *behind* the seam, with the frontier point
        // on the -0.0 side.
        let records = vec![
            record(0, -0.0, 3.0),
            record(1, 0.0, 5.0), // dominated: tied energy, worse latency
            record(2, 0.5, 2.0),
        ];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
        assert_eq!(front_indices(&records, &objectives), vec![0, 2]);
    }

    #[test]
    fn three_objective_fronts_still_use_the_general_path_correctly() {
        use simphony_onn::SplitMix64;
        let mut rng = SplitMix64::new(7);
        let records: Vec<SweepRecord> = (0..60)
            .map(|i| {
                let mut r = record(i, rng.next_f64(), rng.next_f64());
                r.power_w = (rng.next_f64() * 8.0).floor();
                r
            })
            .collect();
        let objectives = [Objective::Energy, Objective::Latency, Objective::Power];
        assert_eq!(
            front_indices(&records, &objectives),
            naive_front(&records, &objectives)
        );
    }

    #[test]
    fn objective_lists_parse_and_reject() {
        let parsed = Objective::parse_list("energy, latency").unwrap();
        assert_eq!(parsed, vec![Objective::Energy, Objective::Latency]);
        assert!(Objective::parse_list("energy,bogus").is_err());
        assert!(Objective::parse_list("").is_err());
    }
}
