//! Declarative sweep specifications and their deterministic expansion.

use std::fmt;

use serde::{Deserialize, Serialize};

use simphony::{DataAwareness, Result as SimResult, SimulationConfig};
use simphony_arch::{generators, PtcArchitecture};
use simphony_dataflow::DataflowStyle;
use simphony_netlist::ArchParams;
use simphony_onn::{models, ModelWorkload, PruningConfig, QuantConfig};
use simphony_units::BitWidth;

use crate::error::{ExploreError, Result};

/// The PTC architecture families the generator axis can select, one per
/// builder in [`simphony_arch::generators`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchFamily {
    /// Dynamic array-style TeMPO tensor core.
    Tempo,
    /// Static Clements-style MZI mesh.
    MziMesh,
    /// Incoherent micro-ring weight bank.
    MrrBank,
    /// Subspace butterfly mesh.
    Butterfly,
    /// Non-volatile phase-change-material crossbar.
    PcmCrossbar,
    /// SCATTER with the analytical phase-shifter power model.
    Scatter,
    /// SCATTER with the measurement-backed phase-shifter power table.
    ScatterMeasured,
}

impl ArchFamily {
    /// Every selectable family, in a stable order.
    pub const ALL: [ArchFamily; 7] = [
        ArchFamily::Tempo,
        ArchFamily::MziMesh,
        ArchFamily::MrrBank,
        ArchFamily::Butterfly,
        ArchFamily::PcmCrossbar,
        ArchFamily::Scatter,
        ArchFamily::ScatterMeasured,
    ];

    /// Short lowercase name, matching the generator function name.
    pub fn name(self) -> &'static str {
        match self {
            ArchFamily::Tempo => "tempo",
            ArchFamily::MziMesh => "mzi_mesh",
            ArchFamily::MrrBank => "mrr_bank",
            ArchFamily::Butterfly => "butterfly",
            ArchFamily::PcmCrossbar => "pcm_crossbar",
            ArchFamily::Scatter => "scatter",
            ArchFamily::ScatterMeasured => "scatter_measured",
        }
    }

    /// Parses a family from its [`name`](Self::name).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Builds the architecture for this family.
    ///
    /// # Errors
    ///
    /// Propagates netlist/parameter validation errors from the generator.
    pub fn generate(self, params: ArchParams, clock_ghz: f64) -> SimResult<PtcArchitecture> {
        let arch = match self {
            ArchFamily::Tempo => generators::tempo(params, clock_ghz),
            ArchFamily::MziMesh => generators::mzi_mesh(params, clock_ghz),
            ArchFamily::MrrBank => generators::mrr_bank(params, clock_ghz),
            ArchFamily::Butterfly => generators::butterfly(params, clock_ghz),
            ArchFamily::PcmCrossbar => generators::pcm_crossbar(params, clock_ghz),
            ArchFamily::Scatter => generators::scatter(params, clock_ghz),
            ArchFamily::ScatterMeasured => generators::scatter_measured(params, clock_ghz),
        }?;
        Ok(arch)
    }
}

impl fmt::Display for ArchFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload selector: which model a sweep point simulates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A single `(m×k)×(k×n)` GEMM (the paper's validation workload is
    /// `280×28×280`).
    Gemm {
        /// Output rows.
        m: usize,
        /// Contraction dimension.
        k: usize,
        /// Output columns.
        n: usize,
    },
    /// The paper's VGG-8/CIFAR-10 evaluation model.
    Vgg8,
    /// BERT-Base with the given sequence length.
    Bert {
        /// Token sequence length.
        seq_len: usize,
    },
}

impl WorkloadSpec {
    /// The paper's `(280×28)×(28×280)` validation GEMM.
    pub fn validation_gemm() -> Self {
        WorkloadSpec::Gemm {
            m: 280,
            k: 28,
            n: 280,
        }
    }

    /// Checks the selector's dimensions are physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] on a zero dimension — a
    /// zero-sized GEMM or empty sequence would propagate NaN metrics through
    /// every downstream record.
    pub fn validate(&self) -> Result<()> {
        match self {
            WorkloadSpec::Gemm { m, k, n } => {
                if *m == 0 || *k == 0 || *n == 0 {
                    return Err(ExploreError::invalid_spec(format!(
                        "GEMM dimensions must be at least 1, got {m}x{k}x{n}"
                    )));
                }
            }
            WorkloadSpec::Vgg8 => {}
            WorkloadSpec::Bert { seq_len } => {
                if *seq_len == 0 {
                    return Err(ExploreError::invalid_spec(
                        "BERT sequence length must be at least 1",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Short label used in record files and CSV columns.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Gemm { m, k, n } => format!("gemm{m}x{k}x{n}"),
            WorkloadSpec::Vgg8 => "vgg8".to_string(),
            WorkloadSpec::Bert { seq_len } => format!("bert{seq_len}"),
        }
    }

    /// Extracts the workload at the given precision/sparsity/seed.
    ///
    /// # Errors
    ///
    /// Propagates workload-extraction errors.
    pub fn extract(&self, bits: BitWidth, sparsity: f64, seed: u64) -> SimResult<ModelWorkload> {
        let model = match self {
            WorkloadSpec::Gemm { m, k, n } => models::single_gemm(*m, *k, *n),
            WorkloadSpec::Vgg8 => models::vgg8_cifar10(),
            WorkloadSpec::Bert { seq_len } => models::bert_base(*seq_len),
        };
        let pruning = PruningConfig::new(sparsity)?;
        Ok(ModelWorkload::extract(
            &model,
            &QuantConfig::uniform(bits),
            &pruning,
            seed,
        )?)
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A declarative design-space sweep: one list of candidate values per axis.
///
/// [`SweepSpec::expand`] takes the Cartesian product of every axis in the
/// field order below (workload outermost, data-awareness innermost), which
/// fixes a deterministic point numbering independent of how the sweep is
/// executed.
///
/// # Examples
///
/// ```
/// use simphony_explore::{ArchFamily, SweepSpec};
///
/// let spec = SweepSpec::new("wavelengths")
///     .with_arch(vec![ArchFamily::Tempo])
///     .with_wavelengths(vec![1, 2, 4, 8]);
/// assert_eq!(spec.expand().unwrap().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable sweep name (used in output file naming and logs).
    pub name: String,
    /// Workloads to simulate.
    pub workload: Vec<WorkloadSpec>,
    /// Architecture families to generate.
    pub arch: Vec<ArchFamily>,
    /// Tile counts (`R`).
    pub tiles: Vec<usize>,
    /// Cores per tile (`C`).
    pub cores_per_tile: Vec<usize>,
    /// Core heights (`H`).
    pub core_height: Vec<usize>,
    /// Core widths (`W`).
    pub core_width: Vec<usize>,
    /// Wavelength counts (`LAMBDA`).
    pub wavelengths: Vec<usize>,
    /// Uniform operand bit widths.
    pub bitwidth: Vec<u8>,
    /// Weight pruning densities expressed as sparsity fractions in `[0, 1)`.
    pub sparsity: Vec<f64>,
    /// GEMM dataflow styles.
    pub dataflow: Vec<DataflowStyle>,
    /// Device power accounting modes.
    pub data_awareness: Vec<DataAwareness>,
    /// Clock frequency in GHz, shared by every point.
    pub clock_ghz: f64,
    /// Deterministic workload-extraction seed, shared by every point.
    pub seed: u64,
}

impl SweepSpec {
    /// A spec with every axis pinned to the paper's default use-case setting:
    /// TeMPO, 2 tiles × 2 cores of 4×4 nodes, 1 wavelength, 8-bit dense
    /// operands, output-stationary, data-aware, 5 GHz.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            workload: vec![WorkloadSpec::validation_gemm()],
            arch: vec![ArchFamily::Tempo],
            tiles: vec![2],
            cores_per_tile: vec![2],
            core_height: vec![4],
            core_width: vec![4],
            wavelengths: vec![1],
            bitwidth: vec![8],
            sparsity: vec![0.0],
            dataflow: vec![DataflowStyle::OutputStationary],
            data_awareness: vec![DataAwareness::Aware],
            clock_ghz: 5.0,
            seed: 42,
        }
    }

    /// Replaces the workload axis.
    #[must_use]
    pub fn with_workload(mut self, workload: Vec<WorkloadSpec>) -> Self {
        self.workload = workload;
        self
    }

    /// Replaces the architecture-family axis.
    #[must_use]
    pub fn with_arch(mut self, arch: Vec<ArchFamily>) -> Self {
        self.arch = arch;
        self
    }

    /// Replaces the tile-count axis.
    #[must_use]
    pub fn with_tiles(mut self, tiles: Vec<usize>) -> Self {
        self.tiles = tiles;
        self
    }

    /// Replaces the cores-per-tile axis.
    #[must_use]
    pub fn with_cores_per_tile(mut self, cores: Vec<usize>) -> Self {
        self.cores_per_tile = cores;
        self
    }

    /// Replaces both core-dimension axes at once (square cores).
    #[must_use]
    pub fn with_core_dims(mut self, dims: Vec<usize>) -> Self {
        self.core_height = dims.clone();
        self.core_width = dims;
        self
    }

    /// Replaces the wavelength axis.
    #[must_use]
    pub fn with_wavelengths(mut self, wavelengths: Vec<usize>) -> Self {
        self.wavelengths = wavelengths;
        self
    }

    /// Replaces the bitwidth axis.
    #[must_use]
    pub fn with_bitwidth(mut self, bitwidth: Vec<u8>) -> Self {
        self.bitwidth = bitwidth;
        self
    }

    /// Replaces the sparsity axis.
    #[must_use]
    pub fn with_sparsity(mut self, sparsity: Vec<f64>) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Replaces the dataflow axis.
    #[must_use]
    pub fn with_dataflow(mut self, dataflow: Vec<DataflowStyle>) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Replaces the data-awareness axis.
    #[must_use]
    pub fn with_data_awareness(mut self, awareness: Vec<DataAwareness>) -> Self {
        self.data_awareness = awareness;
        self
    }

    /// Number of points the expansion will produce.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] when the 11-way product of the
    /// axis lengths overflows `usize` — an unchecked multiplication here
    /// would panic in debug builds and silently wrap in release builds,
    /// corrupting capacity hints and truncating the point index space.
    pub fn point_count(&self) -> Result<usize> {
        let axes = [
            self.workload.len(),
            self.arch.len(),
            self.tiles.len(),
            self.cores_per_tile.len(),
            self.core_height.len(),
            self.core_width.len(),
            self.wavelengths.len(),
            self.bitwidth.len(),
            self.sparsity.len(),
            self.dataflow.len(),
            self.data_awareness.len(),
        ];
        axes.into_iter().try_fold(1usize, |count, len| {
            count.checked_mul(len).ok_or_else(|| {
                ExploreError::invalid_spec(format!(
                    "sweep `{}` spans more than {} points, which overflows the point index space",
                    self.name,
                    usize::MAX
                ))
            })
        })
    }

    /// Validates the axes without expanding.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] when an axis is empty or a value
    /// is out of its physical range.
    pub fn validate(&self) -> Result<()> {
        let axes: [(&str, usize); 11] = [
            ("workload", self.workload.len()),
            ("arch", self.arch.len()),
            ("tiles", self.tiles.len()),
            ("cores_per_tile", self.cores_per_tile.len()),
            ("core_height", self.core_height.len()),
            ("core_width", self.core_width.len()),
            ("wavelengths", self.wavelengths.len()),
            ("bitwidth", self.bitwidth.len()),
            ("sparsity", self.sparsity.len()),
            ("dataflow", self.dataflow.len()),
            ("data_awareness", self.data_awareness.len()),
        ];
        for (axis, len) in axes {
            if len == 0 {
                return Err(ExploreError::invalid_spec(format!(
                    "axis `{axis}` is empty"
                )));
            }
        }
        for dims in [
            &self.tiles,
            &self.cores_per_tile,
            &self.core_height,
            &self.core_width,
            &self.wavelengths,
        ] {
            if dims.contains(&0) {
                return Err(ExploreError::invalid_spec(
                    "architecture dimensions must be at least 1",
                ));
            }
        }
        if self.bitwidth.contains(&0) {
            return Err(ExploreError::invalid_spec("bitwidth must be at least 1"));
        }
        if self.sparsity.iter().any(|s| !(0.0..1.0).contains(s)) {
            return Err(ExploreError::invalid_spec(
                "sparsity values must lie in [0, 1)",
            ));
        }
        if !self.clock_ghz.is_finite() || self.clock_ghz <= 0.0 {
            return Err(ExploreError::invalid_spec(
                "clock_ghz must be positive and finite",
            ));
        }
        for workload in &self.workload {
            workload.validate()?;
        }
        Ok(())
    }

    /// Decodes the point at `index` in deterministic expansion order.
    ///
    /// The index is interpreted as a mixed-radix number whose digits are the
    /// per-axis positions, with the innermost axis (`data_awareness`) as the
    /// least-significant digit — exactly the numbering the nested-loop
    /// expansion produces, so `spec.point_at(i)` is identical (bit for bit
    /// once serialized) to `spec.expand()?[i]` at O(1) cost and O(1) memory.
    ///
    /// # Panics
    ///
    /// Panics when an axis is empty or `index >= point_count()`; call
    /// [`points`](Self::points) (which validates first) or check
    /// [`point_count`](Self::point_count) before using raw indices.
    pub fn point_at(&self, index: usize) -> SweepPoint {
        fn digit(rem: &mut usize, len: usize) -> usize {
            let d = *rem % len;
            *rem /= len;
            d
        }
        let mut rem = index;
        // Least-significant (innermost, fastest-varying) axis first.
        let data_awareness = self.data_awareness[digit(&mut rem, self.data_awareness.len())];
        let dataflow = self.dataflow[digit(&mut rem, self.dataflow.len())];
        let sparsity = self.sparsity[digit(&mut rem, self.sparsity.len())];
        let bits = self.bitwidth[digit(&mut rem, self.bitwidth.len())];
        let wavelengths = self.wavelengths[digit(&mut rem, self.wavelengths.len())];
        let core_width = self.core_width[digit(&mut rem, self.core_width.len())];
        let core_height = self.core_height[digit(&mut rem, self.core_height.len())];
        let cores_per_tile = self.cores_per_tile[digit(&mut rem, self.cores_per_tile.len())];
        let tiles = self.tiles[digit(&mut rem, self.tiles.len())];
        let arch = self.arch[digit(&mut rem, self.arch.len())];
        assert!(
            rem < self.workload.len(),
            "point index {index} out of range for sweep `{}`",
            self.name
        );
        SweepPoint {
            index,
            workload: self.workload[rem].clone(),
            arch,
            tiles,
            cores_per_tile,
            core_height,
            core_width,
            wavelengths,
            bits,
            sparsity,
            dataflow,
            data_awareness,
            clock_ghz: self.clock_ghz,
            seed: self.seed,
        }
    }

    /// A lazy iterator over the expansion, in deterministic order.
    ///
    /// Unlike [`expand`](Self::expand) this never materializes the full point
    /// list: each point is decoded on demand via [`point_at`](Self::point_at),
    /// so arbitrarily large sweeps (hundreds of thousands of points and
    /// beyond) can be streamed in O(1) memory.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] when [`validate`](Self::validate)
    /// fails or the point count overflows.
    pub fn points(&self) -> Result<PointIter<'_>> {
        self.validate()?;
        let total = self.point_count()?;
        Ok(PointIter {
            spec: self,
            next: 0,
            total,
        })
    }

    /// Expands the Cartesian product into ordered [`SweepPoint`]s.
    ///
    /// The ordering is part of the engine's contract: records are emitted in
    /// this order regardless of the number of executor threads. This is a
    /// convenience over [`points`](Self::points) for sweeps small enough to
    /// hold in memory.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] when [`validate`](Self::validate)
    /// fails.
    pub fn expand(&self) -> Result<Vec<SweepPoint>> {
        Ok(self.points()?.collect())
    }
}

/// Lazy iterator over a [`SweepSpec`]'s expansion, created by
/// [`SweepSpec::points`]. Decodes one [`SweepPoint`] per step via
/// [`SweepSpec::point_at`]; never holds more than the current point.
#[derive(Debug, Clone)]
pub struct PointIter<'a> {
    spec: &'a SweepSpec,
    next: usize,
    total: usize,
}

impl Iterator for PointIter<'_> {
    type Item = SweepPoint;

    fn next(&mut self) -> Option<SweepPoint> {
        if self.next >= self.total {
            return None;
        }
        let point = self.spec.point_at(self.next);
        self.next += 1;
        Some(point)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for PointIter<'_> {}

impl std::iter::FusedIterator for PointIter<'_> {}

/// One fully-bound configuration from a sweep expansion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Zero-based position in the deterministic expansion order.
    pub index: usize,
    /// Workload to simulate.
    pub workload: WorkloadSpec,
    /// Architecture family.
    pub arch: ArchFamily,
    /// Tile count (`R`).
    pub tiles: usize,
    /// Cores per tile (`C`).
    pub cores_per_tile: usize,
    /// Core height (`H`).
    pub core_height: usize,
    /// Core width (`W`).
    pub core_width: usize,
    /// Wavelength count (`LAMBDA`).
    pub wavelengths: usize,
    /// Uniform operand bit width.
    pub bits: u8,
    /// Weight sparsity fraction.
    pub sparsity: f64,
    /// GEMM dataflow style.
    pub dataflow: DataflowStyle,
    /// Device power accounting mode.
    pub data_awareness: DataAwareness,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Workload-extraction seed.
    pub seed: u64,
}

/// Identity of the extracted-workload artifact of a sweep point: two points
/// with equal keys extract bit-identical [`simphony_onn::ModelWorkload`]s, so
/// a sweep extracts each distinct key once and shares the result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    workload: WorkloadSpec,
    bits: u8,
    /// Sparsity as raw `f64` bits (extraction is a pure function of the exact
    /// float value).
    sparsity_bits: u64,
    seed: u64,
}

/// Identity of the generated-accelerator artifact of a sweep point: two
/// points with equal keys generate identical [`simphony::Accelerator`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchKey {
    arch: ArchFamily,
    tiles: usize,
    cores_per_tile: usize,
    core_height: usize,
    core_width: usize,
    wavelengths: usize,
    /// Clock as raw `f64` bits.
    clock_bits: u64,
}

impl SweepPoint {
    /// The identity of this point's workload artifact (see [`WorkloadKey`]).
    pub fn workload_key(&self) -> WorkloadKey {
        WorkloadKey {
            workload: self.workload.clone(),
            bits: self.bits,
            sparsity_bits: self.sparsity.to_bits(),
            seed: self.seed,
        }
    }

    /// The identity of this point's accelerator artifact (see [`ArchKey`]).
    pub fn arch_key(&self) -> ArchKey {
        ArchKey {
            arch: self.arch,
            tiles: self.tiles,
            cores_per_tile: self.cores_per_tile,
            core_height: self.core_height,
            core_width: self.core_width,
            wavelengths: self.wavelengths,
            clock_bits: self.clock_ghz.to_bits(),
        }
    }

    /// The architecture parameters of this point.
    pub fn arch_params(&self) -> ArchParams {
        ArchParams::new(
            self.tiles,
            self.cores_per_tile,
            self.core_height,
            self.core_width,
        )
        .with_wavelengths(self.wavelengths)
    }

    /// The simulator configuration of this point.
    pub fn sim_config(&self) -> SimulationConfig {
        SimulationConfig {
            data_awareness: self.data_awareness,
            dataflow: self.dataflow,
            layout_aware: true,
        }
    }

    /// Compact human-readable label (for logs and error messages).
    pub fn label(&self) -> String {
        format!(
            "{} {} R{}C{}H{}W{} lambda{} {}b s{:.2} {} {}",
            self.workload.label(),
            self.arch,
            self.tiles,
            self.cores_per_tile,
            self.core_height,
            self.core_width,
            self.wavelengths,
            self.bits,
            self.sparsity,
            self.dataflow,
            self.data_awareness,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_a_single_paper_point() {
        let spec = SweepSpec::new("default");
        assert_eq!(spec.point_count().unwrap(), 1);
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].arch, ArchFamily::Tempo);
        assert_eq!(points[0].arch_params().total_nodes(), 64);
    }

    #[test]
    fn expansion_order_is_stable_and_indexed() {
        let spec = SweepSpec::new("order")
            .with_wavelengths(vec![1, 2])
            .with_bitwidth(vec![4, 8]);
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 4);
        // Innermost axis (bitwidth) varies fastest.
        assert_eq!(
            points
                .iter()
                .map(|p| (p.wavelengths, p.bits))
                .collect::<Vec<_>>(),
            vec![(1, 4), (1, 8), (2, 4), (2, 8)]
        );
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn empty_axes_and_bad_ranges_are_rejected() {
        assert!(SweepSpec::new("bad")
            .with_arch(Vec::new())
            .expand()
            .is_err());
        assert!(SweepSpec::new("bad")
            .with_sparsity(vec![1.0])
            .expand()
            .is_err());
        assert!(SweepSpec::new("bad").with_tiles(vec![0]).expand().is_err());
        assert!(SweepSpec::new("bad")
            .with_bitwidth(vec![0])
            .expand()
            .is_err());
    }

    #[test]
    fn point_at_matches_nested_loop_expansion() {
        // A spec exercising every axis with more than one value, so each
        // mixed-radix digit actually varies.
        let spec = SweepSpec::new("radix")
            .with_workload(vec![
                WorkloadSpec::validation_gemm(),
                WorkloadSpec::Gemm { m: 8, k: 8, n: 8 },
            ])
            .with_arch(vec![ArchFamily::Tempo, ArchFamily::Scatter])
            .with_tiles(vec![1, 2])
            .with_cores_per_tile(vec![1, 2])
            .with_core_dims(vec![2, 4])
            .with_wavelengths(vec![1, 2, 3])
            .with_bitwidth(vec![4, 8])
            .with_sparsity(vec![0.0, 0.25])
            .with_data_awareness(vec![
                simphony::DataAwareness::Aware,
                simphony::DataAwareness::Unaware,
            ]);
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), spec.point_count().unwrap());
        for (i, expected) in points.iter().enumerate() {
            assert_eq!(&spec.point_at(i), expected, "decode diverges at {i}");
        }
        // The lazy iterator yields the same sequence.
        let lazy: Vec<SweepPoint> = spec.points().unwrap().collect();
        assert_eq!(lazy, points);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_at_rejects_out_of_range_indices() {
        let spec = SweepSpec::new("oob");
        let _ = spec.point_at(1);
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn point_count_overflow_is_an_error_not_a_wrap() {
        // Eight axes of 256 entries multiply to 2^64, one past `usize::MAX`;
        // the same axes at 255 entries stay in range. The values are cheap
        // repeats — only the lengths matter for the product.
        let overflowing = SweepSpec::new("overflow")
            .with_tiles(vec![1; 256])
            .with_cores_per_tile(vec![1; 256])
            .with_core_dims(vec![1; 256])
            .with_wavelengths(vec![1; 256])
            .with_bitwidth(vec![8; 256])
            .with_sparsity(vec![0.0; 256])
            .with_dataflow(vec![DataflowStyle::OutputStationary; 256]);
        assert!(matches!(
            overflowing.point_count(),
            Err(ExploreError::InvalidSpec { .. })
        ));
        assert!(overflowing.points().is_err(), "lazy expansion must reject");
        assert!(overflowing.expand().is_err(), "eager expansion must reject");

        let boundary = SweepSpec::new("boundary")
            .with_tiles(vec![1; 255])
            .with_cores_per_tile(vec![1; 255])
            .with_core_dims(vec![1; 255])
            .with_wavelengths(vec![1; 255])
            .with_bitwidth(vec![8; 255])
            .with_sparsity(vec![0.0; 255])
            .with_dataflow(vec![DataflowStyle::OutputStationary; 255]);
        let count = boundary.point_count().expect("255^8 fits in usize");
        assert_eq!(count, 255usize.pow(8));
    }

    #[test]
    fn huge_sweeps_iterate_lazily_with_random_access() {
        // >=100k points; `points()` never materializes them, and any index is
        // decodable directly.
        let spec = SweepSpec::new("huge")
            .with_tiles((1..=8).collect())
            .with_cores_per_tile((1..=8).collect())
            .with_wavelengths((1..=8).collect())
            .with_bitwidth((1..=8).collect())
            .with_sparsity((0..50).map(|i| f64::from(i) / 64.0).collect());
        let total = spec.point_count().unwrap();
        assert!(total >= 100_000, "spec spans {total} points");
        let mut iter = spec.points().unwrap();
        assert_eq!(iter.len(), total);
        let first = iter.next().unwrap();
        assert_eq!(first.index, 0);
        assert_eq!((first.tiles, first.wavelengths, first.bits), (1, 1, 1));
        let last = spec.point_at(total - 1);
        assert_eq!(last.index, total - 1);
        assert_eq!((last.tiles, last.wavelengths, last.bits), (8, 8, 8));
        assert_eq!(last.sparsity, 49.0 / 64.0);
        // Random access agrees with sequential iteration.
        let sampled = spec.point_at(12_345);
        assert_eq!(
            spec.points().unwrap().nth(12_345).unwrap(),
            sampled,
            "nth() and point_at() must agree"
        );
    }

    #[test]
    fn arch_family_names_round_trip() {
        for family in ArchFamily::ALL {
            assert_eq!(ArchFamily::parse(family.name()), Some(family));
        }
        assert_eq!(ArchFamily::parse("nope"), None);
    }

    #[test]
    fn every_family_generates_its_architecture() {
        for family in ArchFamily::ALL {
            let arch = family.generate(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
            assert!(!arch.name().is_empty());
        }
    }
}
