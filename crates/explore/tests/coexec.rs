//! Integration tests of multi-process co-execution: lease-directory sweeps
//! must reproduce the single-process bytes exactly — with joiners attached,
//! with dead workers' stale leases re-claimed, and across checkpoint resume —
//! and must never emit a record twice.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use simphony_explore::{
    join_sweep, read_jsonl, ArchFamily, ExploreSession, JsonlSink, LeaseConfig, RetryPolicy,
    SweepSpec,
};

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = format!(
        "simphony-coexec-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = std::env::temp_dir().join(unique);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

fn small_spec() -> SweepSpec {
    SweepSpec::new("coexec")
        .with_arch(vec![ArchFamily::Tempo, ArchFamily::Scatter])
        .with_wavelengths(vec![1, 2, 4])
        .with_bitwidth(vec![4, 8])
}

/// The single-process JSONL bytes every co-executed variant must reproduce.
fn golden_bytes(spec: &SweepSpec, dir: &std::path::Path) -> String {
    let path = dir.join("golden.jsonl");
    let mut sink = JsonlSink::create(&path).expect("sink creates");
    ExploreSession::new(spec)
        .chunk_size(4)
        .sink(&mut sink)
        .run()
        .expect("golden sweep runs");
    std::fs::read_to_string(&path).expect("golden reads")
}

fn assert_no_duplicate_indices(jsonl_path: &std::path::Path) {
    let records = read_jsonl(jsonl_path).expect("output parses");
    let mut indices: Vec<usize> = records.iter().map(|r| r.point.index).collect();
    let emitted = indices.len();
    indices.sort_unstable();
    indices.dedup();
    assert_eq!(
        indices.len(),
        emitted,
        "a record index was emitted more than once"
    );
}

#[test]
fn a_lone_primary_coexecutes_to_the_single_process_bytes() {
    let dir = scratch_dir("lone");
    let golden = golden_bytes(&small_spec(), &dir);
    let spec = small_spec();
    let out = dir.join("coexec.jsonl");
    let mut sink = JsonlSink::create(&out).expect("sink creates");
    let outcome = ExploreSession::new(&spec)
        .chunk_size(4)
        .keep_going()
        .coexecute(dir.join("leases"))
        .sink(&mut sink)
        .run()
        .expect("co-executed sweep runs");
    assert_eq!(outcome.total_points, 12);
    assert_eq!(outcome.shards, 3);
    assert!(outcome.failures.is_empty());
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "a primary with no joiners must still match the plain run byte for byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_joiner_thread_shares_the_work_without_duplicating_records() {
    let dir = scratch_dir("joiner");
    let golden = golden_bytes(&small_spec(), &dir);
    let spec = small_spec();
    let lease_dir = dir.join("leases");
    let out = dir.join("coexec.jsonl");

    let joiner = {
        let spec = small_spec();
        let lease_dir = lease_dir.clone();
        std::thread::spawn(move || {
            join_sweep(
                &spec,
                None,
                lease_dir,
                LeaseConfig::default().poll_ms(2).owner("joiner"),
                RetryPolicy::none(),
                &mut |_| {},
            )
        })
    };
    let mut sink = JsonlSink::create(&out).expect("sink creates");
    let outcome = ExploreSession::new(&spec)
        .chunk_size(2)
        .keep_going()
        .coexecute(&lease_dir)
        .lease_config(LeaseConfig::default().poll_ms(2).owner("primary"))
        .sink(&mut sink)
        .run()
        .expect("co-executed sweep runs");
    let join_outcome = joiner
        .join()
        .expect("joiner thread joins")
        .expect("join_sweep succeeds");

    assert_eq!(outcome.total_points, 12);
    assert_eq!(join_outcome.total_shards, 6);
    // Fleet-wide accounting: every point was computed exactly once somewhere.
    assert_eq!(outcome.stats.hits + outcome.stats.misses, 12);
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "two workers' merged output must match the plain run byte for byte"
    );
    assert_no_duplicate_indices(&out);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_dead_workers_stale_lease_is_reclaimed() {
    let dir = scratch_dir("stale");
    let golden = golden_bytes(&small_spec(), &dir);
    let spec = small_spec();
    let lease_dir = dir.join("leases");
    std::fs::create_dir_all(&lease_dir).expect("lease dir creates");
    // A worker that died mid-shard: its lease file, never renewed.
    std::fs::write(
        lease_dir.join("shard-00000001.lease"),
        "{\"owner\":\"dead\",\"beat\":3}",
    )
    .expect("dead lease writes");
    std::thread::sleep(std::time::Duration::from_millis(80));

    let out = dir.join("coexec.jsonl");
    let mut sink = JsonlSink::create(&out).expect("sink creates");
    ExploreSession::new(&spec)
        .chunk_size(4)
        .keep_going()
        .coexecute(&lease_dir)
        .lease_config(LeaseConfig::default().timeout_ms(50).poll_ms(2))
        .sink(&mut sink)
        .run()
        .expect("the primary must re-claim the dead worker's shard and finish");
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "recovery through a stale-lease takeover must not change the bytes"
    );
    assert_no_duplicate_indices(&out);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coexecution_refuses_fail_fast() {
    let dir = scratch_dir("fail-fast");
    let spec = small_spec();
    let mut sink = JsonlSink::create(dir.join("out.jsonl")).expect("sink creates");
    let err = ExploreSession::new(&spec)
        .chunk_size(4)
        .coexecute(dir.join("leases"))
        .sink(&mut sink)
        .run()
        .expect_err("fail-fast cannot span processes");
    assert!(
        err.to_string().contains("KeepGoing"),
        "the error must say what to change: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_joiner_rejects_a_diverging_sweep() {
    let dir = scratch_dir("diverge");
    let spec = small_spec();
    let lease_dir = dir.join("leases");
    let mut sink = JsonlSink::create(dir.join("out.jsonl")).expect("sink creates");
    ExploreSession::new(&spec)
        .chunk_size(4)
        .keep_going()
        .coexecute(&lease_dir)
        .sink(&mut sink)
        .run()
        .expect("primary runs");

    let other = small_spec().with_wavelengths(vec![1, 2, 4, 8]);
    let err = join_sweep(
        &other,
        None,
        &lease_dir,
        LeaseConfig::default().manifest_wait_ms(100).poll_ms(2),
        RetryPolicy::none(),
        &mut |_| {},
    )
    .expect_err("a different spec must be rejected");
    let message = err.to_string();
    assert!(message.contains("spec fingerprint"), "{message}");
    assert!(message.contains("total points"), "{message}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_checkpointed_coexecution_resumes_without_recomputing() {
    let dir = scratch_dir("checkpoint");
    let golden = golden_bytes(&small_spec(), &dir);
    let spec = small_spec();
    let lease_dir = dir.join("leases");
    let ckpt = dir.join("sweep.ckpt");
    let out = dir.join("coexec.jsonl");

    let mut sink = JsonlSink::create(&out).expect("sink creates");
    let outcome = ExploreSession::new(&spec)
        .chunk_size(4)
        .keep_going()
        .coexecute(&lease_dir)
        .checkpoint(&ckpt)
        .sink(&mut sink)
        .run()
        .expect("checkpointed co-execution runs");
    assert_eq!(outcome.skipped_points, 0);
    assert_eq!(std::fs::read_to_string(&out).expect("output reads"), golden);

    // Re-running against the same checkpoint replays everything: no claims,
    // no recomputation, no new records appended.
    let mut sink = JsonlSink::append(&out).expect("sink appends");
    let outcome = ExploreSession::new(&spec)
        .chunk_size(4)
        .keep_going()
        .coexecute(&lease_dir)
        .checkpoint(&ckpt)
        .sink(&mut sink)
        .run()
        .expect("fully checkpointed co-execution replays");
    assert_eq!(outcome.skipped_points, 12);
    assert_eq!(outcome.stats.hits + outcome.stats.misses, 0);
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "a replayed co-execution must append nothing"
    );
    std::fs::remove_dir_all(&dir).ok();
}
