//! Chaos tests: deterministic fault injection across the durability chain.
//! Retries must absorb transient errors without changing a byte, exhausted
//! cache retries must degrade gracefully under keep-going, torn cache writes
//! must heal as misses, and a failed sink flush must keep the checkpoint
//! honest so a resume completes to the golden bytes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use simphony_explore::{
    ArchFamily, Checkpoint, ExploreSession, FaultInjector, FaultKind, FaultPlan, FaultyCache,
    FaultySink, JsonlSink, RetryPolicy, SimCache, SweepSpec,
};

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = format!(
        "simphony-chaos-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = std::env::temp_dir().join(unique);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

fn small_spec() -> SweepSpec {
    SweepSpec::new("chaos")
        .with_arch(vec![ArchFamily::Tempo, ArchFamily::Scatter])
        .with_wavelengths(vec![1, 2, 4])
        .with_bitwidth(vec![4, 8])
}

/// The unfaulted JSONL bytes every chaotic variant must reproduce.
fn golden_bytes(spec: &SweepSpec, dir: &std::path::Path, chunk: usize) -> String {
    let path = dir.join("golden.jsonl");
    let mut sink = JsonlSink::create(&path).expect("sink creates");
    ExploreSession::new(spec)
        .chunk_size(chunk)
        .sink(&mut sink)
        .run()
        .expect("golden sweep runs");
    std::fs::read_to_string(&path).expect("golden reads")
}

#[test]
fn retries_absorb_seeded_transient_cache_faults_without_changing_bytes() {
    let dir = scratch_dir("transient");
    let golden = golden_bytes(&small_spec(), &dir, 4);
    let spec = small_spec();
    let injector = FaultInjector::new(FaultPlan::new(0xC0FFEE).transient_error_rate(0.2));
    let cache = SimCache::open(dir.join("cache")).expect("cache opens");
    let faulty = FaultyCache::new(Box::new(cache.clone()), injector);

    let out = dir.join("faulted.jsonl");
    let mut sink = JsonlSink::create(&out).expect("sink creates");
    let outcome = ExploreSession::new(&spec)
        .chunk_size(4)
        .cache(faulty)
        .retry(RetryPolicy::new(6).base_delay_ms(1).max_delay_ms(2))
        .sink(&mut sink)
        .run()
        .expect("retries must ride out a 20% transient-error rate");
    assert_eq!(
        outcome.cache_degraded, 0,
        "six attempts at 20% fault rate must never exhaust"
    );
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "transient faults plus retries must be invisible in the output"
    );
    assert_eq!(
        cache.len().unwrap(),
        12,
        "every entry landed despite faults"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_exhausted_cache_write_degrades_but_the_record_still_reaches_the_sink() {
    let dir = scratch_dir("degrade");
    let golden = golden_bytes(&small_spec(), &dir, 0);
    let spec = small_spec();
    // One shard of 12 points: ops 0..=11 are the cache puts. Fault op 3 with
    // no retry budget: that put must degrade, nothing else may change.
    let injector = FaultInjector::new(FaultPlan::new(1).with_fault(3, FaultKind::TransientError));
    let cache = SimCache::open(dir.join("cache")).expect("cache opens");
    let faulty = FaultyCache::new(Box::new(cache.clone()), injector);

    let out = dir.join("degraded.jsonl");
    let mut sink = JsonlSink::create(&out).expect("sink creates");
    let outcome = ExploreSession::new(&spec)
        .cache(faulty)
        .keep_going()
        .sink(&mut sink)
        .run()
        .expect("keep-going degrades an exhausted cache write instead of aborting");
    assert_eq!(
        outcome.cache_degraded, 1,
        "exactly the faulted put degraded"
    );
    assert!(outcome.failures.is_empty(), "degradation is not a failure");
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "the degraded point's record must still reach the sink"
    );
    assert_eq!(cache.len().unwrap(), 11, "one entry was sacrificed");

    // Without keep-going the same exhaustion is a hard error.
    let injector = FaultInjector::new(FaultPlan::new(1).with_fault(3, FaultKind::TransientError));
    let cache2 = SimCache::open(dir.join("cache2")).expect("cache opens");
    let faulty = FaultyCache::new(Box::new(cache2), injector);
    let mut sink = JsonlSink::create(dir.join("failfast.jsonl")).expect("sink creates");
    ExploreSession::new(&spec)
        .cache(faulty)
        .sink(&mut sink)
        .run()
        .expect_err("fail-fast must surface the exhausted cache write");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_cache_write_heals_as_a_miss_on_the_next_run() {
    let dir = scratch_dir("torn");
    let golden = golden_bytes(&small_spec(), &dir, 0);
    let spec = small_spec();
    // Tear cache put op 5 short: the entry publishes truncated JSON, the
    // record itself is unharmed.
    let injector = FaultInjector::new(FaultPlan::new(2).with_fault(5, FaultKind::ShortWrite));
    let cache = SimCache::open(dir.join("cache")).expect("cache opens");
    let faulty = FaultyCache::new(Box::new(cache.clone()), injector);
    let out = dir.join("torn.jsonl");
    let mut sink = JsonlSink::create(&out).expect("sink creates");
    ExploreSession::new(&spec)
        .cache(faulty)
        .sink(&mut sink)
        .run()
        .expect("a short write reports success; the sweep proceeds");
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "the torn write corrupts the cache entry, never the output"
    );

    // Re-run unfaulted over the same cache: the torn entry parses as nothing,
    // counts as a miss, re-simulates, and heals.
    let out2 = dir.join("healed.jsonl");
    let mut sink = JsonlSink::create(&out2).expect("sink creates");
    let outcome = ExploreSession::new(&spec)
        .cache(cache.clone())
        .sink(&mut sink)
        .run()
        .expect("healing run succeeds");
    assert_eq!(outcome.stats.hits, 11, "intact entries hit");
    assert_eq!(outcome.stats.misses, 1, "the torn entry re-simulates");
    assert_eq!(
        std::fs::read_to_string(&out2).expect("output reads"),
        golden,
        "healing must reproduce the same bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_failed_sink_flush_keeps_the_checkpoint_honest_and_resume_completes() {
    let dir = scratch_dir("flush");
    let golden = golden_bytes(&small_spec(), &dir, 4);
    let spec = small_spec();
    let out = dir.join("records.jsonl");
    let ckpt = dir.join("sweep.ckpt");
    // No cache: per checkpointed shard the sink sees 4 accepts, one
    // flush_shard, one sync. Op 10 is shard 2's flush_shard.
    let injector = FaultInjector::new(FaultPlan::new(3).with_fault(10, FaultKind::TransientError));
    {
        let mut sink = JsonlSink::create(&out).expect("sink creates");
        let mut faulty = FaultySink::new(&mut sink, injector);
        ExploreSession::new(&spec)
            .chunk_size(4)
            .checkpoint(&ckpt)
            .sink(&mut faulty)
            .run()
            .expect_err("the unretried flush failure must abort the sweep");
    }
    let (_, completed) = Checkpoint::load(&ckpt).expect("checkpoint loads");
    assert_eq!(
        completed.len(),
        1,
        "only the shard whose flush succeeded may be checkpointed"
    );
    let emitted = completed.last().map_or(0, |s| s.emitted);
    assert_eq!(emitted, 4);

    // Resume exactly as the CLI does: truncate the JSONL to the durable
    // prefix the checkpoint vouches for, then append the remaining shards.
    let text = std::fs::read_to_string(&out).expect("output reads");
    let prefix: String = text.lines().take(emitted).fold(String::new(), |mut s, l| {
        s.push_str(l);
        s.push('\n');
        s
    });
    std::fs::write(&out, prefix).expect("truncates");
    let mut sink = JsonlSink::append(&out).expect("sink appends");
    let outcome = ExploreSession::new(&spec)
        .chunk_size(4)
        .checkpoint(&ckpt)
        .sink(&mut sink)
        .run()
        .expect("the resumed sweep completes unfaulted");
    assert_eq!(
        outcome.skipped_points, 4,
        "the checkpointed shard is skipped"
    );
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "crash plus resume must converge on the golden bytes"
    );

    // The same fault with a retry budget never aborts at all. (Checkpointing
    // again so the op indices line up: accepts 6..=9, flush_shard at 10.)
    let injector = FaultInjector::new(FaultPlan::new(3).with_fault(10, FaultKind::TransientError));
    let out2 = dir.join("retried.jsonl");
    let ckpt2 = dir.join("retried.ckpt");
    let mut sink = JsonlSink::create(&out2).expect("sink creates");
    let mut faulty = FaultySink::new(&mut sink, injector);
    ExploreSession::new(&spec)
        .chunk_size(4)
        .checkpoint(&ckpt2)
        .retry(RetryPolicy::new(3).base_delay_ms(1).max_delay_ms(2))
        .sink(&mut faulty)
        .run()
        .expect("one retry absorbs the flush fault");
    assert_eq!(
        std::fs::read_to_string(&out2).expect("output reads"),
        golden,
        "the retried flush must not duplicate or drop records"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latency_faults_slow_the_sweep_but_change_nothing() {
    let dir = scratch_dir("latency");
    let golden = golden_bytes(&small_spec(), &dir, 4);
    let spec = small_spec();
    let injector = FaultInjector::new(
        FaultPlan::new(4)
            .with_fault(2, FaultKind::Latency { ms: 10 })
            .with_fault(7, FaultKind::Latency { ms: 10 }),
    );
    let out = dir.join("slow.jsonl");
    let mut sink = JsonlSink::create(&out).expect("sink creates");
    let mut faulty = FaultySink::new(&mut sink, injector);
    ExploreSession::new(&spec)
        .chunk_size(4)
        .sink(&mut faulty)
        .run()
        .expect("latency spikes are not errors");
    assert_eq!(
        std::fs::read_to_string(&out).expect("output reads"),
        golden,
        "latency injection must be output-invisible"
    );
    std::fs::remove_dir_all(&dir).ok();
}
