//! Failure-ordering tests of the pipelined executor: a sink dying mid-shard
//! must surface its error (no deadlock, no checkpoint for the unfinished
//! shard), and a panic in either stage — compute (cache lookup / simulate) or
//! I/O (sink) — must propagate to the caller without poisoning the writer
//! thread or violating the checkpoint invariant: the checkpoint never records
//! a shard whose sink data did not land.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use simphony_explore::{
    BackendStats, CacheBackend, Checkpoint, DirCache, ExploreError, ExploreSession, JsonlSink,
    RecordSink, Result, SweepPoint, SweepRecord, SweepSpec,
};

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = format!(
        "simphony-pipeline-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = std::env::temp_dir().join(unique);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

/// Four TeMPO points (wavelengths 1–4), one point per shard at chunk 1.
fn four_point_spec(name: &str) -> SweepSpec {
    SweepSpec::new(name).with_wavelengths(vec![1, 2, 3, 4])
}

/// The invariant every interrupted run must leave behind: each checkpointed
/// shard's cumulative `emitted` count is covered by durable sink lines.
fn assert_checkpoint_covered_by_jsonl(ckpt: &PathBuf, jsonl: &PathBuf) -> usize {
    let (_, completed) = Checkpoint::load(ckpt).expect("checkpoint parses after the crash");
    let durable_lines = std::fs::read_to_string(jsonl)
        .expect("jsonl readable")
        .lines()
        .count();
    for shard in &completed {
        assert!(
            shard.emitted <= durable_lines,
            "checkpoint records shard {} with {} emitted records but only {} lines landed",
            shard.shard,
            shard.emitted,
            durable_lines
        );
    }
    completed.len()
}

/// Forwards to a [`JsonlSink`] but returns an error on the Nth `accept` —
/// a writer-stage failure in the *middle* of a shard, after some of the
/// shard's records already went out.
struct DyingSink {
    inner: JsonlSink,
    accepts_left: usize,
}

impl RecordSink for DyingSink {
    fn accept(&mut self, record: SweepRecord) -> Result<()> {
        if self.accepts_left == 0 {
            return Err(ExploreError::cache("sink died mid-shard".to_string()));
        }
        self.accepts_left -= 1;
        self.inner.accept(record)
    }

    fn flush_shard(&mut self) -> Result<()> {
        self.inner.flush_shard()
    }

    fn finish(&mut self) -> Result<()> {
        self.inner.finish()
    }
}

#[test]
fn a_sink_dying_mid_shard_surfaces_the_error_without_checkpointing_that_shard() {
    let spec = four_point_spec("dying-mid-shard");
    let dir = scratch_dir("dying");
    let ckpt = dir.join("sweep.ckpt");
    let jsonl = dir.join("records.jsonl");
    let cache = DirCache::open(dir.join("cache")).expect("cache opens");

    // Dies on the third accept: shards 0 and 1 flush and checkpoint cleanly,
    // shard 2 fails mid-drain. The pipelined compute stage is by then already
    // ahead (possibly blocked on the single-slot channel) — the error must
    // still surface promptly instead of deadlocking.
    let mut sink = DyingSink {
        inner: JsonlSink::create(&jsonl).expect("sink creates"),
        accepts_left: 2,
    };
    let err = ExploreSession::new(&spec)
        .cache(cache.clone())
        .chunk_size(1)
        .pipelined(true)
        .checkpoint(&ckpt)
        .sink(&mut sink)
        .run()
        .expect_err("the dying sink aborts the sweep");
    assert!(
        err.to_string().contains("sink died mid-shard"),
        "the sink error is the surfaced error, got: {err}"
    );
    drop(sink);

    let completed = assert_checkpoint_covered_by_jsonl(&ckpt, &jsonl);
    assert_eq!(
        completed, 2,
        "exactly the two cleanly-flushed shards are checkpointed"
    );

    // The failed shard's simulation was not wasted: its success is cached
    // (cache puts precede sink emission in the drain order), so resuming
    // through the same checkpoint serves it—and anything the compute stage
    // ran ahead on—from the cache.
    let mut resumed = JsonlSink::append(&jsonl).expect("sink reopens");
    let outcome = ExploreSession::new(&spec)
        .cache(cache)
        .chunk_size(1)
        .pipelined(true)
        .checkpoint(&ckpt)
        .sink(&mut resumed)
        .run()
        .expect("resume completes");
    assert_eq!(outcome.skipped_points, 2, "checkpointed shards skipped");
    assert_eq!(outcome.stats.hits + outcome.stats.misses, 2);
    assert!(outcome.failures.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// Delegates to a [`DirCache`] but panics when asked to look up one specific
/// point — a compute-stage panic (batch lookups run on the worker threads).
#[derive(Clone)]
struct PanickyCache {
    inner: DirCache,
    panic_at_index: usize,
}

impl CacheBackend for PanickyCache {
    fn get(&self, point: &SweepPoint) -> Option<SweepRecord> {
        assert_ne!(
            point.index, self.panic_at_index,
            "injected compute-stage panic"
        );
        self.inner.get(point)
    }

    fn put(&self, record: &SweepRecord) -> Result<()> {
        self.inner.put(record)
    }

    fn len(&self) -> Result<usize> {
        CacheBackend::len(&self.inner)
    }

    fn stats(&self) -> Result<BackendStats> {
        self.inner.stats()
    }

    fn scan(&self, visit: &mut dyn FnMut(String, SweepRecord) -> Result<()>) -> Result<()> {
        self.inner.scan(visit)
    }
}

#[test]
fn a_compute_stage_panic_propagates_without_poisoning_the_writer() {
    let spec = four_point_spec("compute-panic");
    let dir = scratch_dir("compute-panic");
    let ckpt = dir.join("sweep.ckpt");
    let jsonl = dir.join("records.jsonl");
    let cache = PanickyCache {
        inner: DirCache::open(dir.join("cache")).expect("cache opens"),
        panic_at_index: 2,
    };

    let panic = catch_unwind(AssertUnwindSafe(|| {
        let mut sink = JsonlSink::create(&jsonl).expect("sink creates");
        let _ = ExploreSession::new(&spec)
            .cache(cache.clone())
            .chunk_size(1)
            .pipelined(true)
            .checkpoint(&ckpt)
            .sink(&mut sink)
            .run();
    }))
    .expect_err("the injected panic reaches the caller");
    let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        message.contains("injected compute-stage panic"),
        "original panic payload preserved, got: {message}"
    );

    // The writer thread wound down cleanly: whatever it checkpointed is
    // backed by durable sink lines, and nothing past the panic is recorded.
    let completed = assert_checkpoint_covered_by_jsonl(&ckpt, &jsonl);
    assert!(
        completed <= 2,
        "shards at or past the panicking point must not be checkpointed"
    );

    // Not poisoned: a fresh session over the same checkpoint and cache
    // finishes the sweep normally.
    let mut resumed = JsonlSink::append(&jsonl).expect("sink reopens");
    let outcome = ExploreSession::new(&spec)
        .cache(cache.inner)
        .chunk_size(1)
        .pipelined(true)
        .checkpoint(&ckpt)
        .sink(&mut resumed)
        .run()
        .expect("resume completes after the panic");
    assert_eq!(outcome.skipped_points, completed);
    assert!(outcome.failures.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// Panics inside `accept` — an I/O-stage panic on the writer thread itself.
struct PanickySink {
    accepts_left: usize,
}

impl RecordSink for PanickySink {
    fn accept(&mut self, _record: SweepRecord) -> Result<()> {
        assert_ne!(self.accepts_left, 0, "injected writer-stage panic");
        self.accepts_left -= 1;
        Ok(())
    }
}

#[test]
fn a_writer_stage_panic_propagates_and_never_checkpoints_the_shard() {
    let spec = four_point_spec("writer-panic");
    let dir = scratch_dir("writer-panic");
    let ckpt = dir.join("sweep.ckpt");

    let panic = catch_unwind(AssertUnwindSafe(|| {
        let mut sink = PanickySink { accepts_left: 1 };
        let _ = ExploreSession::new(&spec)
            .chunk_size(1)
            .pipelined(true)
            .checkpoint(&ckpt)
            .sink(&mut sink)
            .run();
    }))
    .expect_err("the writer panic reaches the caller");
    let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        message.contains("injected writer-stage panic"),
        "original panic payload preserved, got: {message}"
    );

    // Shard 0 drained before the panic; shard 1 (whose accept panicked) must
    // not be in the checkpoint.
    let (_, completed) = Checkpoint::load(&ckpt).expect("checkpoint parses");
    assert_eq!(
        completed.len(),
        1,
        "only the cleanly-drained shard recorded"
    );
    std::fs::remove_dir_all(&dir).ok();
}
