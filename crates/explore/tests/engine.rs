//! End-to-end tests of the exploration engine: spec serialization, executor
//! determinism across thread counts, cache behaviour and Pareto invariants.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use simphony_explore::{
    dominates, pareto_front, ArchFamily, CacheStats, ExploreSession, Objective, SimCache,
    SweepSpec, WorkloadSpec,
};

/// A fresh scratch directory under the target-adjacent temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = format!(
        "simphony-explore-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = std::env::temp_dir().join(unique);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

fn multi_axis_spec() -> SweepSpec {
    use simphony::DataAwareness;
    SweepSpec::new("engine-test")
        .with_arch(vec![ArchFamily::Tempo, ArchFamily::Scatter])
        .with_wavelengths(vec![1, 2, 4])
        .with_bitwidth(vec![4, 8])
        .with_sparsity(vec![0.0, 0.5])
        .with_data_awareness(vec![DataAwareness::Aware, DataAwareness::Unaware])
}

#[test]
fn spec_round_trips_through_json() {
    let spec = multi_axis_spec();
    let text = serde_json::to_string_pretty(&spec).expect("spec serializes");
    let back: SweepSpec = serde_json::from_str(&text).expect("spec parses back");
    assert_eq!(back, spec);
    // And the expansion of the round-tripped spec is identical.
    assert_eq!(back.expand().unwrap(), spec.expand().unwrap());
}

#[test]
fn handwritten_json_spec_parses() {
    // The declarative format a user would actually write.
    let text = r#"{
        "name": "quickstart",
        "workload": [{"Gemm": {"m": 280, "k": 28, "n": 280}}, "Vgg8"],
        "arch": ["Tempo"],
        "tiles": [2],
        "cores_per_tile": [2],
        "core_height": [4],
        "core_width": [4],
        "wavelengths": [1, 2],
        "bitwidth": [8],
        "sparsity": [0.0],
        "dataflow": ["OutputStationary"],
        "data_awareness": ["Aware"],
        "clock_ghz": 5.0,
        "seed": 42
    }"#;
    let spec: SweepSpec = serde_json::from_str(text).expect("handwritten spec parses");
    assert_eq!(spec.point_count().unwrap(), 4);
    assert_eq!(spec.workload[1], WorkloadSpec::Vgg8);
}

#[test]
fn records_are_byte_identical_across_thread_counts() {
    let spec = multi_axis_spec();
    assert_eq!(
        spec.point_count().unwrap(),
        48,
        "spec must cover >= 48 points"
    );

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let sequential = ExploreSession::new(&spec)
        .run_collect()
        .expect("sequential sweep runs");
    std::env::set_var("RAYON_NUM_THREADS", "8");
    let parallel = ExploreSession::new(&spec)
        .run_collect()
        .expect("parallel sweep runs");
    std::env::remove_var("RAYON_NUM_THREADS");

    let seq_bytes = serde_json::to_string_pretty(&sequential.records).unwrap();
    let par_bytes = serde_json::to_string_pretty(&parallel.records).unwrap();
    assert_eq!(seq_bytes, par_bytes, "thread count must not affect output");

    // Expansion order is preserved in the records.
    for (i, record) in parallel.records.iter().enumerate() {
        assert_eq!(record.point.index, i);
    }
}

#[test]
fn second_run_is_served_entirely_from_cache() {
    let dir = scratch_dir("cache");
    let cache = SimCache::open(&dir).expect("cache opens");
    let spec = SweepSpec::new("cached")
        .with_wavelengths(vec![1, 2])
        .with_bitwidth(vec![4, 8]);

    let first = ExploreSession::new(&spec)
        .cache(cache.clone())
        .run_collect()
        .expect("first run");
    assert_eq!(first.stats, CacheStats { hits: 0, misses: 4 });
    assert_eq!(cache.len().unwrap(), 4);

    let second = ExploreSession::new(&spec)
        .cache(cache.clone())
        .run_collect()
        .expect("second run");
    assert_eq!(second.stats, CacheStats { hits: 4, misses: 0 });
    assert_eq!(
        serde_json::to_string(&second.records).unwrap(),
        serde_json::to_string(&first.records).unwrap(),
        "cached records must be identical to freshly simulated ones"
    );

    // An overlapping sweep only simulates the new points.
    let wider = SweepSpec::new("cached-wider")
        .with_wavelengths(vec![1, 2, 3])
        .with_bitwidth(vec![4, 8]);
    let third = ExploreSession::new(&wider)
        .cache(cache.clone())
        .run_collect()
        .expect("overlapping run");
    assert_eq!(third.stats, CacheStats { hits: 4, misses: 2 });

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pareto_front_is_exactly_the_non_dominated_set() {
    let spec = SweepSpec::new("pareto")
        .with_arch(vec![ArchFamily::Tempo, ArchFamily::Scatter])
        .with_wavelengths(vec![1, 2, 4])
        .with_bitwidth(vec![4, 8]);
    let outcome = ExploreSession::new(&spec)
        .run_collect()
        .expect("sweep runs");
    let objectives = [Objective::Energy, Objective::Latency, Objective::Area];
    let front = pareto_front(&outcome.records, &objectives).expect("finite metrics");

    assert!(!front.is_empty(), "a finite set always has a frontier");
    // No member of the front is dominated by any record.
    for member in &front {
        for record in &outcome.records {
            assert!(
                !dominates(record, member, &objectives),
                "front member #{} dominated by #{}",
                member.point.index,
                record.point.index
            );
        }
    }
    // Every excluded record is dominated by some front member.
    for record in &outcome.records {
        if front.iter().any(|m| m.point == record.point) {
            continue;
        }
        assert!(
            front.iter().any(|m| dominates(m, record, &objectives)),
            "excluded record #{} is not dominated by the front",
            record.point.index
        );
    }
}
