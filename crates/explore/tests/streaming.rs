//! Integration tests of the streaming sharded executor: chunked output must
//! be byte-identical to the in-memory path (on the committed golden records),
//! JSONL round-trips, keep-going sweeps resume through the cache, and two
//! sweeps can share a cache directory concurrently.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use simphony_explore::{
    read_json, read_jsonl, to_csv, ArchFamily, CsvSink, ExploreSession, JsonFileSink, JsonlSink,
    MultiSink, SimCache, SweepSpec, VecSink,
};

const GOLDEN_SPEC: &str = include_str!("golden/mixed_axis_spec.json");
const GOLDEN_RECORDS: &str = include_str!("golden/mixed_axis_records.json");

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = format!(
        "simphony-streaming-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = std::env::temp_dir().join(unique);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

#[test]
fn chunked_streaming_reproduces_the_golden_bytes_at_every_chunk_size() {
    let spec: SweepSpec = serde_json::from_str(GOLDEN_SPEC).expect("golden spec parses");
    for chunk in [1, 3, 8, 32, 1000] {
        let dir = scratch_dir("golden");
        let json_path = dir.join("records.json");
        let mut sink = JsonFileSink::create(&json_path).expect("sink creates");
        ExploreSession::new(&spec)
            .chunk_size(chunk)
            .sink(&mut sink)
            .run()
            .expect("streaming sweep runs");
        let streamed = std::fs::read_to_string(&json_path).expect("output reads");
        assert_eq!(
            streamed, GOLDEN_RECORDS,
            "chunk size {chunk} diverged from the pre-refactor golden bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn streaming_sinks_match_their_batch_writers() {
    let spec = SweepSpec::new("sinks")
        .with_arch(vec![ArchFamily::Tempo, ArchFamily::Scatter])
        .with_wavelengths(vec![1, 2])
        .with_bitwidth(vec![4, 8]);
    let reference = ExploreSession::new(&spec)
        .run_collect()
        .expect("reference sweep runs");

    let dir = scratch_dir("sinks");
    let json_path = dir.join("records.json");
    let jsonl_path = dir.join("records.jsonl");
    let csv_path = dir.join("records.csv");
    let mut sink = MultiSink::new()
        .with(Box::new(JsonFileSink::create(&json_path).unwrap()))
        .with(Box::new(JsonlSink::create(&jsonl_path).unwrap()))
        .with(Box::new(CsvSink::create(&csv_path).unwrap()));
    ExploreSession::new(&spec)
        .chunk_size(3)
        .sink(&mut sink)
        .run()
        .expect("streaming sweep runs");

    assert_eq!(
        read_json(&json_path).unwrap(),
        reference.records,
        "pretty JSON round-trips"
    );
    assert_eq!(
        read_jsonl(&jsonl_path).unwrap(),
        reference.records,
        "JSONL round-trips"
    );
    assert_eq!(
        std::fs::read_to_string(&csv_path).unwrap(),
        to_csv(&reference.records),
        "CSV is byte-identical to the batch renderer"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keep_going_sweeps_resume_through_the_cache() {
    let dir = scratch_dir("resume");
    let cache = SimCache::open(&dir).expect("cache opens");
    // Four points; the two butterfly ones fail at artifact construction
    // (non-power-of-two core height), the two TeMPO ones succeed.
    let spec = SweepSpec::new("keep-going")
        .with_arch(vec![ArchFamily::Tempo, ArchFamily::Butterfly])
        .with_core_dims(vec![6])
        .with_wavelengths(vec![1, 2]);

    let mut sink = VecSink::new();
    let outcome = ExploreSession::new(&spec)
        .cache(cache.clone())
        .chunk_size(2)
        .keep_going()
        .sink(&mut sink)
        .run()
        .expect("keep-going sweeps do not abort");
    assert_eq!(outcome.total_points, 4);
    assert_eq!(outcome.stats.misses, 4);
    assert_eq!(
        outcome.failures.iter().map(|f| f.index).collect::<Vec<_>>(),
        vec![2, 3],
        "both butterfly points are reported, in expansion order"
    );
    assert_eq!(sink.records().len(), 2, "the successes still streamed out");
    assert_eq!(cache.len().unwrap(), 2, "the successes are cached");

    // Re-running the same sweep serves the good points from the cache and
    // only re-attempts the failures.
    let mut sink = VecSink::new();
    let outcome = ExploreSession::new(&spec)
        .cache(cache.clone())
        .chunk_size(2)
        .keep_going()
        .sink(&mut sink)
        .run()
        .expect("resumed sweep runs");
    assert_eq!(outcome.stats.hits, 2, "successes resume from the cache");
    assert_eq!(
        outcome.stats.misses, 2,
        "only the failures are re-attempted"
    );
    assert_eq!(outcome.failures.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_sweeps_share_a_cache_directory_safely() {
    // Two overlapping sweeps race on the same cache directory; atomic entry
    // writes mean both finish with correct records and the shared points are
    // stored exactly once.
    let dir = scratch_dir("shared-cache");
    let spec_a = SweepSpec::new("shared-a")
        .with_wavelengths(vec![1, 2])
        .with_bitwidth(vec![4, 8]);
    let spec_b = SweepSpec::new("shared-b")
        .with_wavelengths(vec![1, 2, 3])
        .with_bitwidth(vec![8]);

    let (outcome_a, outcome_b) = std::thread::scope(|scope| {
        let dir_a = dir.clone();
        let dir_b = dir.clone();
        let a = scope.spawn(move || {
            let cache = SimCache::open(&dir_a).expect("cache opens");
            ExploreSession::new(&spec_a)
                .cache(cache)
                .run_collect()
                .expect("sweep A runs")
        });
        let b = scope.spawn(move || {
            let cache = SimCache::open(&dir_b).expect("cache opens");
            ExploreSession::new(&spec_b)
                .cache(cache)
                .run_collect()
                .expect("sweep B runs")
        });
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(outcome_a.records.len(), 4);
    assert_eq!(outcome_b.records.len(), 3);

    // Every record equals its from-scratch simulation regardless of which
    // process' write landed; the overlapping λ∈{1,2}@8b points dedupe.
    let cache = SimCache::open(&dir).expect("cache opens");
    assert_eq!(cache.len().unwrap(), 5, "4 + 3 points with 2 shared");
    let spec_a2 = SweepSpec::new("shared-a")
        .with_wavelengths(vec![1, 2])
        .with_bitwidth(vec![4, 8]);
    let rerun = ExploreSession::new(&spec_a2)
        .cache(cache.clone())
        .run_collect()
        .expect("rerun is all hits");
    assert_eq!(rerun.stats.hits, 4);
    assert_eq!(
        serde_json::to_string(&rerun.records).unwrap(),
        serde_json::to_string(&outcome_a.records).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}
