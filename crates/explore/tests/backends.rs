//! Cross-backend integration tests: every [`CacheBackend`] must reproduce
//! the committed golden record bytes at every tested chunk size (cold and
//! warm), and a checkpointed sweep interrupted mid-run must resume without
//! re-simulating completed shards or re-attempting recorded failures.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use simphony_explore::{
    read_jsonl, BackendKind, Checkpoint, DirCache, ExploreError, ExploreSession, JsonFileSink,
    JsonlSink, PackedSegmentCache, RecordSink, Result, ShardedDirCache, SweepRecord, SweepSpec,
    VecSink,
};

const GOLDEN_SPEC: &str = include_str!("golden/mixed_axis_spec.json");
const GOLDEN_RECORDS: &str = include_str!("golden/mixed_axis_records.json");

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = format!(
        "simphony-backends-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = std::env::temp_dir().join(unique);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

#[test]
fn every_backend_reproduces_the_golden_bytes_at_every_chunk_size() {
    let spec: SweepSpec = serde_json::from_str(GOLDEN_SPEC).expect("golden spec parses");
    for kind in BackendKind::ALL {
        for chunk in [1, 3, 8, 32, 1000] {
            let dir = scratch_dir(&format!("golden-{kind}-{chunk}"));
            let cache_dir = dir.join("cache");

            // Cold: every point simulated, every success written through the
            // backend — and the output must match the pre-refactor bytes.
            let cold_path = dir.join("cold.json");
            let mut sink = JsonFileSink::create(&cold_path).expect("sink creates");
            let cold = ExploreSession::new(&spec)
                .cache_boxed(kind.open(&cache_dir).expect("backend opens"))
                .chunk_size(chunk)
                .sink(&mut sink)
                .run()
                .expect("cold sweep runs");
            assert_eq!(cold.stats.misses, cold.total_points);
            assert_eq!(
                std::fs::read_to_string(&cold_path).unwrap(),
                GOLDEN_RECORDS,
                "{kind} backend, chunk {chunk}: cold output diverged from the golden bytes"
            );

            // Warm: a fresh handle over the same directory serves every point
            // from the cache, byte-identically.
            let warm_path = dir.join("warm.json");
            let mut sink = JsonFileSink::create(&warm_path).expect("sink creates");
            let warm = ExploreSession::new(&spec)
                .cache_boxed(kind.open(&cache_dir).expect("backend reopens"))
                .chunk_size(chunk)
                .sink(&mut sink)
                .run()
                .expect("warm sweep runs");
            assert_eq!(
                warm.stats.hits, warm.total_points,
                "{kind} backend, chunk {chunk}: warm rerun must be all hits"
            );
            assert_eq!(
                std::fs::read_to_string(&warm_path).unwrap(),
                GOLDEN_RECORDS,
                "{kind} backend, chunk {chunk}: warm output diverged from the golden bytes"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn the_pipeline_is_byte_identical_to_the_serial_path_on_every_backend() {
    // Sink bytes, cache contents and checkpoint files of a pipelined sweep
    // must be indistinguishable from the strictly-serial executor's, for
    // every backend at every chunk size — cold and warm.
    let spec: SweepSpec = serde_json::from_str(GOLDEN_SPEC).expect("golden spec parses");
    for kind in BackendKind::ALL {
        for chunk in [1, 3, 8, 32, 1000] {
            let dir = scratch_dir(&format!("pipe-{kind}-{chunk}"));
            let run = |pipelined: bool, tag: &str| {
                let jsonl = dir.join(format!("{tag}.jsonl"));
                let ckpt = dir.join(format!("{tag}.ckpt"));
                let cache_dir = dir.join(format!("cache-{tag}"));
                let mut sink = JsonlSink::create(&jsonl).expect("sink creates");
                ExploreSession::new(&spec)
                    .cache_boxed(kind.open(&cache_dir).expect("backend opens"))
                    .chunk_size(chunk)
                    .pipelined(pipelined)
                    .checkpoint(&ckpt)
                    .sink(&mut sink)
                    .run()
                    .expect("sweep runs");
                drop(sink);
                (jsonl, ckpt, cache_dir)
            };
            let (serial_jsonl, serial_ckpt, serial_cache) = run(false, "serial");
            let (piped_jsonl, piped_ckpt, piped_cache) = run(true, "piped");
            assert_eq!(
                std::fs::read(&piped_jsonl).unwrap(),
                std::fs::read(&serial_jsonl).unwrap(),
                "{kind} chunk {chunk}: pipelined sink bytes diverged"
            );
            assert_eq!(
                std::fs::read(&piped_ckpt).unwrap(),
                std::fs::read(&serial_ckpt).unwrap(),
                "{kind} chunk {chunk}: pipelined checkpoint diverged"
            );
            // Cache contents: identical key → record maps (file names can
            // differ for packed segments, whose names embed a counter).
            let snapshot = |cache_dir: &std::path::Path| {
                let backend = kind.open(cache_dir).expect("backend reopens");
                let mut entries: Vec<(String, SweepRecord)> = Vec::new();
                backend
                    .scan(&mut |key, record| {
                        entries.push((key, record));
                        Ok(())
                    })
                    .expect("scan succeeds");
                entries
            };
            assert_eq!(
                snapshot(&piped_cache),
                snapshot(&serial_cache),
                "{kind} chunk {chunk}: pipelined cache contents diverged"
            );
            // Warm pipelined rerun over the serial path's cache: all hits,
            // same bytes again.
            let warm_jsonl = dir.join("warm.jsonl");
            let mut sink = JsonlSink::create(&warm_jsonl).expect("sink creates");
            let warm = ExploreSession::new(&spec)
                .cache_boxed(kind.open(&serial_cache).expect("backend reopens"))
                .chunk_size(chunk)
                .pipelined(true)
                .sink(&mut sink)
                .run()
                .expect("warm sweep runs");
            drop(sink);
            assert_eq!(warm.stats.hits, warm.total_points);
            assert_eq!(
                std::fs::read(&warm_jsonl).unwrap(),
                std::fs::read(&serial_jsonl).unwrap(),
                "{kind} chunk {chunk}: warm pipelined bytes diverged"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn the_pipeline_is_byte_identical_under_injected_failures() {
    // keep-going sweep with two failing points: the pipelined executor must
    // emit the same JSONL prefix, record the same failures in the same order,
    // and checkpoint the same shard lines as the serial one.
    let spec = SweepSpec::new("pipe-failures")
        .with_arch(vec![
            simphony_explore::ArchFamily::Tempo,
            simphony_explore::ArchFamily::Butterfly,
        ])
        .with_core_dims(vec![6])
        .with_wavelengths(vec![1, 2]);
    let dir = scratch_dir("pipe-failures");
    let run = |pipelined: bool, tag: &str| {
        let jsonl = dir.join(format!("{tag}.jsonl"));
        let ckpt = dir.join(format!("{tag}.ckpt"));
        let mut sink = JsonlSink::create(&jsonl).expect("sink creates");
        let outcome = ExploreSession::new(&spec)
            .chunk_size(1)
            .keep_going()
            .pipelined(pipelined)
            .checkpoint(&ckpt)
            .sink(&mut sink)
            .run()
            .expect("keep-going sweep completes");
        drop(sink);
        (jsonl, ckpt, outcome)
    };
    let (serial_jsonl, serial_ckpt, serial) = run(false, "serial");
    let (piped_jsonl, piped_ckpt, piped) = run(true, "piped");
    assert_eq!(
        std::fs::read(&piped_jsonl).unwrap(),
        std::fs::read(&serial_jsonl).unwrap()
    );
    assert_eq!(
        std::fs::read(&piped_ckpt).unwrap(),
        std::fs::read(&serial_ckpt).unwrap()
    );
    assert_eq!(piped.failures.len(), serial.failures.len());
    for (a, b) in piped.failures.iter().zip(&serial.failures) {
        assert_eq!((a.index, &a.label), (b.index, &b.label));
        assert_eq!(a.error.to_string(), b.error.to_string());
    }
    assert_eq!(piped.stats, serial.stats);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backends_are_interchangeable_mid_sweep_via_migration() {
    // Populate a flat cache, migrate it to the packed backend, and finish the
    // sweep against the migrated copy: the records must be identical and the
    // migrated entries must all hit.
    let spec: SweepSpec = serde_json::from_str(GOLDEN_SPEC).expect("golden spec parses");
    let dir = scratch_dir("interchange");
    let flat = DirCache::open(dir.join("flat")).expect("cache opens");
    let reference = ExploreSession::new(&spec)
        .cache(flat.clone())
        .run_collect()
        .expect("reference sweep runs");

    let packed = PackedSegmentCache::open(dir.join("packed")).expect("cache opens");
    let moved = simphony_explore::migrate_cache(&flat, &packed).expect("migration succeeds");
    assert_eq!(moved, reference.records.len());

    let resumed = ExploreSession::new(&spec)
        .cache(packed)
        .run_collect()
        .expect("sweep against migrated cache runs");
    assert_eq!(resumed.stats.hits, reference.records.len());
    assert_eq!(resumed.records, reference.records);

    // And the sharded flavour round-trips too.
    let sharded = ShardedDirCache::open(dir.join("sharded")).expect("cache opens");
    assert_eq!(
        simphony_explore::migrate_cache(&flat, &sharded).expect("migration succeeds"),
        moved
    );
    let resumed = ExploreSession::new(&spec)
        .cache(sharded)
        .run_collect()
        .expect("sweep against sharded cache runs");
    assert_eq!(resumed.stats.hits, reference.records.len());
    std::fs::remove_dir_all(&dir).ok();
}

/// A sink that forwards to a [`JsonlSink`] but dies on the Nth shard flush —
/// the deterministic stand-in for a sweep killed mid-run.
struct DyingSink {
    inner: JsonlSink,
    flushes_left: usize,
}

impl RecordSink for DyingSink {
    fn accept(&mut self, record: SweepRecord) -> Result<()> {
        self.inner.accept(record)
    }

    fn flush_shard(&mut self) -> Result<()> {
        if self.flushes_left == 0 {
            return Err(ExploreError::cache("simulated crash".to_string()));
        }
        self.flushes_left -= 1;
        self.inner.flush_shard()
    }

    fn finish(&mut self) -> Result<()> {
        self.inner.finish()
    }
}

#[test]
fn an_interrupted_sweep_resumes_from_its_checkpoint_without_rework() {
    // Expansion order (chunk 1 → one point per shard):
    //   0: tempo λ1 (ok)   1: tempo λ2 (ok)
    //   2: butterfly λ1 (fails: height 6 is not a power of two)
    //   3: butterfly λ2 (fails)
    let spec = SweepSpec::new("interrupt")
        .with_arch(vec![
            simphony_explore::ArchFamily::Tempo,
            simphony_explore::ArchFamily::Butterfly,
        ])
        .with_core_dims(vec![6])
        .with_wavelengths(vec![1, 2]);
    let dir = scratch_dir("interrupt");
    let ckpt = dir.join("sweep.ckpt");
    let jsonl = dir.join("records.jsonl");
    let cache = DirCache::open(dir.join("cache")).expect("cache opens");

    // First run dies after flushing shard 0: one shard checkpointed, one
    // record durable in the JSONL, shard 1's success cached but NOT
    // checkpointed (the crash hit between cache flush and checkpoint append).
    let mut sink = DyingSink {
        inner: JsonlSink::create(&jsonl).expect("sink creates"),
        flushes_left: 1,
    };
    let err = ExploreSession::new(&spec)
        .cache(cache.clone())
        .chunk_size(1)
        .keep_going()
        .checkpoint(&ckpt)
        .sink(&mut sink)
        .run()
        .expect_err("the dying sink aborts the sweep");
    assert!(err.to_string().contains("simulated crash"));
    drop(sink);
    let (header, completed) = Checkpoint::load(&ckpt).expect("checkpoint parses");
    assert!(header.keep_going);
    assert_eq!(completed.len(), 1, "exactly the flushed shard is recorded");
    assert_eq!(completed[0].emitted, 1);
    // The file may hold MORE than the checkpointed record (here the sink's
    // buffer drained on drop) — the checkpoint's `emitted` count is what
    // vouches for the durable prefix, and `simphony-cli resume` truncates to
    // it before appending.
    let flushed = read_jsonl(&jsonl).expect("prefix parses");
    assert!(!flushed.is_empty());
    assert_eq!(
        flushed[0].point.index, 0,
        "the checkpointed record is first"
    );
    assert_eq!(cache.len().unwrap(), 2, "shard 1's success was cached");

    // Resume: shard 0 is skipped outright (no cache read, no simulation, no
    // duplicate record), shard 1 hits the cache, shards 2–3 re-attempt and
    // fail live.
    let mut sink = VecSink::new();
    let outcome = ExploreSession::new(&spec)
        .cache(cache.clone())
        .chunk_size(1)
        .keep_going()
        .checkpoint(&ckpt)
        .sink(&mut sink)
        .run()
        .expect("resume runs to completion");
    assert_eq!(outcome.skipped_points, 1, "the checkpointed shard skipped");
    assert_eq!(outcome.stats.hits, 1, "shard 1 resumed through the cache");
    assert_eq!(outcome.stats.misses, 2, "only the failures were attempted");
    assert_eq!(outcome.replayed_failures, 0);
    assert_eq!(
        outcome.failures.iter().map(|f| f.index).collect::<Vec<_>>(),
        vec![2, 3]
    );
    assert_eq!(
        sink.records()
            .iter()
            .map(|r| r.point.index)
            .collect::<Vec<_>>(),
        vec![1],
        "only the not-yet-emitted success streams out"
    );

    // Second resume: everything is checkpointed now — zero cache reads, zero
    // simulations, and the recorded failures replay without re-attempts.
    let outcome = ExploreSession::new(&spec)
        .cache(cache)
        .chunk_size(1)
        .keep_going()
        .checkpoint(&ckpt)
        .run()
        .expect("fully-checkpointed rerun runs");
    assert_eq!(outcome.skipped_points, 4);
    assert_eq!(outcome.stats.hits + outcome.stats.misses, 0, "no rework");
    assert_eq!(outcome.replayed_failures, 2, "known-bad points replayed");
    assert!(outcome.failures[0]
        .error
        .to_string()
        .contains("power-of-two"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_sweeps_work_with_every_backend() {
    let spec: SweepSpec = serde_json::from_str(GOLDEN_SPEC).expect("golden spec parses");
    for kind in BackendKind::ALL {
        let dir = scratch_dir(&format!("ckpt-{kind}"));
        let ckpt = dir.join("sweep.ckpt");
        let cache_dir = dir.join("cache");
        let first = ExploreSession::new(&spec)
            .cache_boxed(kind.open(&cache_dir).expect("backend opens"))
            .chunk_size(8)
            .checkpoint(&ckpt)
            .run()
            .expect("checkpointed sweep runs");
        assert_eq!(first.skipped_points, 0);
        let backend = kind.open(&cache_dir).expect("backend reopens");
        assert_eq!(
            backend.len().unwrap(),
            first.total_points,
            "{kind}: every checkpointed success is durable in the cache"
        );
        let rerun = ExploreSession::new(&spec)
            .cache_boxed(backend)
            .chunk_size(8)
            .checkpoint(&ckpt)
            .run()
            .expect("checkpointed rerun runs");
        assert_eq!(
            rerun.skipped_points, rerun.total_points,
            "{kind}: all skipped"
        );
        assert_eq!(rerun.stats.hits + rerun.stats.misses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
