//! Value-aware device power models (paper Fig. 5).
//!
//! Analog devices encode operand values in their physical configuration, so
//! their power depends on *what* they compute. SimPhony supports three
//! fidelities: an analytical closed form, a simulation-backed lookup table and
//! a measurement-backed lookup table.

use serde::{Deserialize, Serialize};
use std::fmt;

use simphony_units::Power;

use crate::lut::LookupTable;

/// Provenance/fidelity of a value-aware power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerFidelity {
    /// Closed-form analytical model (e.g. `P = Pπ · φ/π` for a thermal phase shifter).
    Analytical,
    /// Lookup table obtained from device-level simulation (e.g. Lumerical HEAT).
    Simulated,
    /// Lookup table obtained from chip measurements.
    Measured,
}

impl fmt::Display for PowerFidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerFidelity::Analytical => write!(f, "analytical"),
            PowerFidelity::Simulated => write!(f, "simulated"),
            PowerFidelity::Measured => write!(f, "measured"),
        }
    }
}

/// How a device's power depends on the operand value it encodes.
///
/// Operand values are normalised to the device's encoding range: `0.0` means
/// the device is idle / encodes zero, `1.0` means full-scale (e.g. a π phase
/// shift or maximum transmission swing).
///
/// # Examples
///
/// ```
/// use simphony_devlib::PowerModel;
/// use simphony_units::Power;
///
/// // Analytical thermal phase shifter: Pπ = 20 mW.
/// let model = PowerModel::linear(Power::ZERO, Power::from_milliwatts(20.0));
/// assert!((model.power_at(0.5).milliwatts() - 10.0).abs() < 1e-12);
/// // Data-unaware analyses fall back to the worst case (Pπ).
/// assert!((model.worst_case_power().milliwatts() - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerModel {
    /// Power independent of the encoded value.
    Static(Power),
    /// Power linear in the encoded value: `P(v) = idle + v · (full_scale − idle)`.
    ///
    /// This is the "analytical power model" fidelity of the paper.
    Linear {
        /// Power when the device encodes zero.
        idle: Power,
        /// Power when the device encodes its full-scale value.
        full_scale: Power,
    },
    /// Power read from a lookup table over the normalised encoded value.
    ///
    /// The table's fidelity records whether it came from simulation or
    /// measurement, which only matters for reporting.
    Lookup {
        /// Response table mapping normalised value in `[0, 1]` to power in milliwatts.
        table: LookupTable,
        /// Where the table came from.
        fidelity: PowerFidelity,
    },
}

impl PowerModel {
    /// Convenience constructor for the linear/analytical model.
    pub fn linear(idle: Power, full_scale: Power) -> Self {
        PowerModel::Linear { idle, full_scale }
    }

    /// Convenience constructor for a table-backed model.
    pub fn lookup(table: LookupTable, fidelity: PowerFidelity) -> Self {
        PowerModel::Lookup { table, fidelity }
    }

    /// The fidelity class of this model.
    pub fn fidelity(&self) -> PowerFidelity {
        match self {
            PowerModel::Static(_) | PowerModel::Linear { .. } => PowerFidelity::Analytical,
            PowerModel::Lookup { fidelity, .. } => *fidelity,
        }
    }

    /// Power drawn when the device encodes the normalised value `value`.
    ///
    /// Values are clamped to the model's domain; a pruned (power-gated) element
    /// should be queried with `value = 0.0`, or simply skipped by the caller.
    pub fn power_at(&self, value: f64) -> Power {
        let v = value.abs();
        match self {
            PowerModel::Static(p) => *p,
            PowerModel::Linear { idle, full_scale } => {
                let v = v.clamp(0.0, 1.0);
                *idle + (*full_scale - *idle) * v
            }
            PowerModel::Lookup { table, .. } => Power::from_milliwatts(table.value_at(v)),
        }
    }

    /// The worst-case (data-unaware) power assumption.
    ///
    /// The paper notes that default library references such as `Pπ` overestimate
    /// actual power; this is exactly that overestimate, used when workload values
    /// are unavailable.
    pub fn worst_case_power(&self) -> Power {
        match self {
            PowerModel::Static(p) => *p,
            PowerModel::Linear { idle, full_scale } => idle.max(*full_scale),
            PowerModel::Lookup { table, .. } => Power::from_milliwatts(
                table
                    .points()
                    .iter()
                    .map(|&(_, p)| p)
                    .fold(0.0_f64, f64::max),
            ),
        }
    }

    /// The expected power when values are uniformly distributed over the range.
    pub fn mean_power(&self) -> Power {
        match self {
            PowerModel::Static(p) => *p,
            PowerModel::Linear { idle, full_scale } => (*idle + *full_scale) * 0.5,
            PowerModel::Lookup { table, .. } => Power::from_milliwatts(table.mean_value()),
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::Static(Power::ZERO)
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerModel::Static(p) => write!(f, "static {p}"),
            PowerModel::Linear { full_scale, .. } => {
                write!(f, "linear (full-scale {full_scale})")
            }
            PowerModel::Lookup { fidelity, .. } => write!(f, "lookup ({fidelity})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured_ps_table() -> LookupTable {
        // Slightly sub-linear response: measured thermal crosstalk compensation
        // makes the real device marginally cheaper than the analytical Pπ line.
        LookupTable::new(vec![
            (0.0, 0.0),
            (0.25, 4.6),
            (0.5, 9.4),
            (0.75, 14.3),
            (1.0, 19.4),
        ])
        .expect("valid table")
    }

    #[test]
    fn linear_model_interpolates_between_idle_and_full_scale() {
        let m = PowerModel::linear(Power::from_milliwatts(2.0), Power::from_milliwatts(22.0));
        assert!((m.power_at(0.0).milliwatts() - 2.0).abs() < 1e-12);
        assert!((m.power_at(1.0).milliwatts() - 22.0).abs() < 1e-12);
        assert!((m.power_at(0.5).milliwatts() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn values_outside_range_are_clamped_and_sign_is_ignored() {
        let m = PowerModel::linear(Power::ZERO, Power::from_milliwatts(10.0));
        assert!((m.power_at(-0.5).milliwatts() - 5.0).abs() < 1e-12);
        assert!((m.power_at(3.0).milliwatts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_model_uses_table_and_reports_fidelity() {
        let m = PowerModel::lookup(measured_ps_table(), PowerFidelity::Measured);
        assert_eq!(m.fidelity(), PowerFidelity::Measured);
        assert!((m.power_at(0.5).milliwatts() - 9.4).abs() < 1e-12);
        assert!((m.worst_case_power().milliwatts() - 19.4).abs() < 1e-12);
    }

    #[test]
    fn measured_model_is_cheaper_than_analytical_for_same_pi_power() {
        // This is the Fig. 10(b) effect: data-aware + measured model < data-aware
        // + analytical model < data-unaware worst case.
        let analytical = PowerModel::linear(Power::ZERO, Power::from_milliwatts(20.0));
        let measured = PowerModel::lookup(measured_ps_table(), PowerFidelity::Measured);
        let values = [0.1, 0.3, 0.5, 0.7, 0.9];
        let e_analytical: f64 = values
            .iter()
            .map(|&v| analytical.power_at(v).milliwatts())
            .sum();
        let e_measured: f64 = values
            .iter()
            .map(|&v| measured.power_at(v).milliwatts())
            .sum();
        let e_unaware = analytical.worst_case_power().milliwatts() * values.len() as f64;
        assert!(e_measured < e_analytical);
        assert!(e_analytical < e_unaware);
    }

    #[test]
    fn mean_power_of_linear_model_is_midpoint() {
        let m = PowerModel::linear(Power::ZERO, Power::from_milliwatts(20.0));
        assert!((m.mean_power().milliwatts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_reports_model_class() {
        assert!(PowerModel::default().to_string().contains("static"));
        assert!(
            PowerModel::lookup(measured_ps_table(), PowerFidelity::Simulated)
                .to_string()
                .contains("simulated")
        );
    }
}
