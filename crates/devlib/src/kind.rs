//! Device taxonomy: what a component *is*, independent of its parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// High-level category used to split breakdowns into electrical and optical parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceCategory {
    /// Electronic/CMOS components (converters, amplifiers, memory, control).
    Electrical,
    /// Photonic components (modulators, interferometers, detectors, passives).
    Optical,
}

impl fmt::Display for DeviceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceCategory::Electrical => write!(f, "electrical"),
            DeviceCategory::Optical => write!(f, "optical"),
        }
    }
}

/// The kind of a device instance in an EPIC AI accelerator.
///
/// The kinds cover every component appearing in the paper's architecture case
/// studies (TeMPO, MZI meshes, MRR weight banks, PCM crossbars, SCATTER) and in
/// its area/energy breakdown figures.
///
/// # Examples
///
/// ```
/// use simphony_devlib::{DeviceCategory, DeviceKind};
///
/// assert_eq!(DeviceKind::Mzm.category(), DeviceCategory::Optical);
/// assert_eq!(DeviceKind::Adc.category(), DeviceCategory::Electrical);
/// assert!(DeviceKind::Crossing.is_passive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceKind {
    /// Continuous-wave laser source.
    Laser,
    /// Kerr micro-comb providing multiple wavelengths from one pump.
    MicroComb,
    /// Fibre-to-chip coupling structure (edge or grating coupler).
    Coupling,
    /// High-speed electro-optic Mach-Zehnder modulator used for operand encoding.
    Mzm,
    /// Mach-Zehnder interferometer (2×2 unitary element of coherent meshes).
    Mzi,
    /// Micro-ring resonator (weight-bank element / WDM filter).
    Mrr,
    /// Thermo-optic phase shifter (slow, µs-scale reconfiguration).
    PhaseShifterThermal,
    /// Electro-optic phase shifter (fast, sub-ns reconfiguration).
    PhaseShifterEo,
    /// Non-volatile phase-change-material cell (crossbar weight element).
    PcmCell,
    /// 1×2 Y-branch splitter/combiner.
    YBranch,
    /// Multi-mode interferometer splitter/combiner (1×N or N×N).
    Mmi,
    /// Waveguide crossing.
    Crossing,
    /// Photodetector converting optical power to photocurrent.
    Photodetector,
    /// Transimpedance amplifier following a photodetector.
    Tia,
    /// Analog integrator used for temporal accumulation of photocurrent.
    Integrator,
    /// Analog-to-digital converter.
    Adc,
    /// Digital-to-analog converter.
    Dac,
    /// On-chip SRAM macro (global/local buffer, register file).
    SramMacro,
    /// Off-chip high-bandwidth memory interface.
    HbmPhy,
    /// Digital control and miscellaneous glue logic.
    DigitalControl,
}

impl DeviceKind {
    /// Number of device kinds, for dense per-kind tables indexed by
    /// [`index`](Self::index).
    pub const COUNT: usize = 20;

    /// Dense index in `0..COUNT`, stable in the declaration order of the enum
    /// (the order [`all`](Self::all) returns).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The kind whose [`label`](Self::label) is `label`, if any.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::all().iter().copied().find(|k| k.label() == label)
    }

    /// The electrical/optical category this kind belongs to.
    pub fn category(self) -> DeviceCategory {
        match self {
            DeviceKind::Laser
            | DeviceKind::MicroComb
            | DeviceKind::Coupling
            | DeviceKind::Mzm
            | DeviceKind::Mzi
            | DeviceKind::Mrr
            | DeviceKind::PhaseShifterThermal
            | DeviceKind::PhaseShifterEo
            | DeviceKind::PcmCell
            | DeviceKind::YBranch
            | DeviceKind::Mmi
            | DeviceKind::Crossing
            | DeviceKind::Photodetector => DeviceCategory::Optical,
            DeviceKind::Tia
            | DeviceKind::Integrator
            | DeviceKind::Adc
            | DeviceKind::Dac
            | DeviceKind::SramMacro
            | DeviceKind::HbmPhy
            | DeviceKind::DigitalControl => DeviceCategory::Electrical,
        }
    }

    /// `true` for passive optical structures that consume no electrical power.
    pub fn is_passive(self) -> bool {
        matches!(
            self,
            DeviceKind::Coupling | DeviceKind::YBranch | DeviceKind::Mmi | DeviceKind::Crossing
        )
    }

    /// `true` for devices that encode operand values (their power is data-dependent).
    pub fn is_modulator(self) -> bool {
        matches!(
            self,
            DeviceKind::Mzm
                | DeviceKind::Mzi
                | DeviceKind::Mrr
                | DeviceKind::PhaseShifterThermal
                | DeviceKind::PhaseShifterEo
                | DeviceKind::PcmCell
        )
    }

    /// `true` for data converters whose power scales with resolution and rate.
    pub fn is_converter(self) -> bool {
        matches!(self, DeviceKind::Adc | DeviceKind::Dac)
    }

    /// All kinds, useful for exhaustive reporting.
    pub fn all() -> &'static [DeviceKind] {
        &[
            DeviceKind::Laser,
            DeviceKind::MicroComb,
            DeviceKind::Coupling,
            DeviceKind::Mzm,
            DeviceKind::Mzi,
            DeviceKind::Mrr,
            DeviceKind::PhaseShifterThermal,
            DeviceKind::PhaseShifterEo,
            DeviceKind::PcmCell,
            DeviceKind::YBranch,
            DeviceKind::Mmi,
            DeviceKind::Crossing,
            DeviceKind::Photodetector,
            DeviceKind::Tia,
            DeviceKind::Integrator,
            DeviceKind::Adc,
            DeviceKind::Dac,
            DeviceKind::SramMacro,
            DeviceKind::HbmPhy,
            DeviceKind::DigitalControl,
        ]
    }

    /// Short label used in breakdown tables (matches the figure legends of the paper).
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Laser => "Laser",
            DeviceKind::MicroComb => "Comb",
            DeviceKind::Coupling => "Coupling",
            DeviceKind::Mzm => "MZM",
            DeviceKind::Mzi => "MZI",
            DeviceKind::Mrr => "MRR",
            DeviceKind::PhaseShifterThermal => "PS",
            DeviceKind::PhaseShifterEo => "PS-EO",
            DeviceKind::PcmCell => "PCM",
            DeviceKind::YBranch => "Y Branch",
            DeviceKind::Mmi => "MMI",
            DeviceKind::Crossing => "Crossing",
            DeviceKind::Photodetector => "PD",
            DeviceKind::Tia => "TIA",
            DeviceKind::Integrator => "Integrator",
            DeviceKind::Adc => "ADC",
            DeviceKind::Dac => "DAC",
            DeviceKind::SramMacro => "Mem",
            DeviceKind::HbmPhy => "HBM",
            DeviceKind::DigitalControl => "Control",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_split_the_kind_space() {
        let all = DeviceKind::all();
        let optical = all
            .iter()
            .filter(|k| k.category() == DeviceCategory::Optical)
            .count();
        let electrical = all
            .iter()
            .filter(|k| k.category() == DeviceCategory::Electrical)
            .count();
        assert_eq!(optical + electrical, all.len());
        assert!(optical >= 10, "most kinds in an EPIC library are photonic");
    }

    #[test]
    fn passives_are_optical_and_not_converters() {
        for kind in DeviceKind::all() {
            if kind.is_passive() {
                assert_eq!(kind.category(), DeviceCategory::Optical);
                assert!(!kind.is_converter());
            }
        }
    }

    #[test]
    fn indices_are_dense_and_match_all_order() {
        assert_eq!(DeviceKind::all().len(), DeviceKind::COUNT);
        for (position, kind) in DeviceKind::all().iter().enumerate() {
            assert_eq!(kind.index(), position);
            assert_eq!(DeviceKind::from_label(kind.label()), Some(*kind));
        }
        assert_eq!(DeviceKind::from_label("nope"), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = DeviceKind::all().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(before, labels.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(DeviceKind::Photodetector.to_string(), "PD");
        assert_eq!(DeviceKind::SramMacro.to_string(), "Mem");
    }
}
