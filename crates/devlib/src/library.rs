//! The device registry architectures draw their components from.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{DeviceError, Result};
use crate::kind::DeviceKind;
use crate::presets::standard_devices;
use crate::spec::DeviceSpec;

/// A named collection of [`DeviceSpec`]s.
///
/// Architectures reference devices by library name, so swapping a foundry PDK
/// or a custom measured device in for a default is just a library edit — no
/// architecture description changes.
///
/// # Examples
///
/// ```
/// use simphony_devlib::{DeviceKind, DeviceLibrary, DeviceSpec, Footprint};
///
/// let mut lib = DeviceLibrary::standard();
/// let custom = DeviceSpec::builder("my_pd", DeviceKind::Photodetector)
///     .footprint(Footprint::from_um(25.0, 12.0))
///     .build()?;
/// lib.insert(custom)?;
/// assert!(lib.get("my_pd").is_ok());
/// # Ok::<(), simphony_devlib::DeviceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceLibrary {
    devices: BTreeMap<String, DeviceSpec>,
}

impl DeviceLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the standard library with every preset photonic and electronic device.
    pub fn standard() -> Self {
        let mut lib = Self::new();
        for spec in standard_devices() {
            lib.devices.insert(spec.name().to_string(), spec);
        }
        lib
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` when no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Registers a device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DuplicateDevice`] when a device with the same name
    /// is already present. Use [`DeviceLibrary::insert_or_replace`] to overwrite.
    pub fn insert(&mut self, spec: DeviceSpec) -> Result<()> {
        if self.devices.contains_key(spec.name()) {
            return Err(DeviceError::DuplicateDevice {
                name: spec.name().to_string(),
            });
        }
        self.devices.insert(spec.name().to_string(), spec);
        Ok(())
    }

    /// Registers a device, replacing any existing entry with the same name.
    ///
    /// Returns the previous entry, if any.
    pub fn insert_or_replace(&mut self, spec: DeviceSpec) -> Option<DeviceSpec> {
        self.devices.insert(spec.name().to_string(), spec)
    }

    /// Looks up a device by name.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownDevice`] when the name is not registered.
    pub fn get(&self, name: &str) -> Result<&DeviceSpec> {
        self.devices
            .get(name)
            .ok_or_else(|| DeviceError::UnknownDevice {
                name: name.to_string(),
            })
    }

    /// Returns any device of the requested kind, preferring the first in name order.
    pub fn any_of_kind(&self, kind: DeviceKind) -> Option<&DeviceSpec> {
        self.devices.values().find(|d| d.kind() == kind)
    }

    /// Iterates over all devices of the requested kind.
    pub fn of_kind(&self, kind: DeviceKind) -> impl Iterator<Item = &DeviceSpec> {
        self.devices.values().filter(move |d| d.kind() == kind)
    }

    /// Iterates over all registered devices in name order.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceSpec> {
        self.devices.values()
    }

    /// All registered names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.devices.keys().map(String::as_str).collect()
    }

    /// Removes a device by name, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<DeviceSpec> {
        self.devices.remove(name)
    }
}

impl Extend<DeviceSpec> for DeviceLibrary {
    fn extend<T: IntoIterator<Item = DeviceSpec>>(&mut self, iter: T) {
        for spec in iter {
            self.insert_or_replace(spec);
        }
    }
}

impl FromIterator<DeviceSpec> for DeviceLibrary {
    fn from_iter<T: IntoIterator<Item = DeviceSpec>>(iter: T) -> Self {
        let mut lib = Self::new();
        lib.extend(iter);
        lib
    }
}

impl IntoIterator for DeviceLibrary {
    type Item = DeviceSpec;
    type IntoIter = std::collections::btree_map::IntoValues<String, DeviceSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.devices.into_values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Footprint;
    use simphony_units::Power;

    #[test]
    fn standard_library_is_nonempty_and_sorted() {
        let lib = DeviceLibrary::standard();
        assert!(lib.len() >= 20);
        let names = lib.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn duplicate_insert_is_rejected_but_replace_works() {
        let mut lib = DeviceLibrary::standard();
        let dup = lib.get("crossing").expect("preset").clone();
        assert!(matches!(
            lib.insert(dup.clone()),
            Err(DeviceError::DuplicateDevice { .. })
        ));
        let prev = lib.insert_or_replace(dup.with_static_power(Power::from_milliwatts(1.0)));
        assert!(prev.is_some());
        assert!(
            (lib.get("crossing")
                .expect("present")
                .static_power()
                .milliwatts()
                - 1.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn unknown_lookup_reports_the_name() {
        let lib = DeviceLibrary::standard();
        let err = lib.get("warp_core").unwrap_err();
        assert!(err.to_string().contains("warp_core"));
    }

    #[test]
    fn of_kind_filters_correctly() {
        let lib = DeviceLibrary::standard();
        assert!(lib.of_kind(DeviceKind::PhaseShifterThermal).count() >= 2);
        for d in lib.of_kind(DeviceKind::Dac) {
            assert_eq!(d.kind(), DeviceKind::Dac);
        }
    }

    #[test]
    fn collect_and_remove_round_trip() {
        let lib: DeviceLibrary = crate::presets::photonic_devices().into_iter().collect();
        assert_eq!(lib.len(), crate::presets::photonic_devices().len());
        let mut lib = lib;
        let removed = lib.remove("crossing");
        assert!(removed.is_some());
        assert!(lib.get("crossing").is_err());
    }

    #[test]
    fn custom_device_round_trips_through_library() {
        let mut lib = DeviceLibrary::new();
        let spec = DeviceSpec::builder("probe", DeviceKind::Photodetector)
            .footprint(Footprint::from_um(10.0, 10.0))
            .build()
            .expect("valid");
        lib.insert(spec.clone()).expect("first insert succeeds");
        assert_eq!(lib.get("probe").expect("present"), &spec);
    }
}
