//! SimPhony-DevLib: a comprehensive, customizable electronic-photonic device library.
//!
//! This crate is the foundation of the SimPhony-RS stack: every architecture is
//! assembled from [`DeviceSpec`]s looked up in a [`DeviceLibrary`]. A spec carries
//! everything the analyzers need — footprint, insertion loss, static power,
//! per-operation dynamic energy, bandwidth, reconfiguration time, converter
//! resolution/sampling rate — plus a *value-aware* [`PowerModel`] so energy can be
//! accumulated from the actual operand values a workload encodes (the paper's
//! "data-dependent, device-response-aware energy modeling", Fig. 5).
//!
//! Three power-model fidelities are supported, mirroring the paper:
//! analytical closed forms, simulation-backed lookup tables, and measured
//! lookup tables ([`PowerFidelity`]).
//!
//! # Examples
//!
//! ```
//! use simphony_devlib::{DeviceLibrary, DeviceKind};
//!
//! let lib = DeviceLibrary::standard();
//! let mzm = lib.get("mzm_eo").expect("standard library ships an EO MZM");
//! assert_eq!(mzm.kind(), DeviceKind::Mzm);
//! assert!(mzm.insertion_loss().db() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod kind;
mod library;
mod lut;
mod power;
mod presets;
mod scaling;
mod spec;

pub use error::{DeviceError, Result};
pub use kind::{DeviceCategory, DeviceKind};
pub use library::DeviceLibrary;
pub use lut::LookupTable;
pub use power::{PowerFidelity, PowerModel};
pub use presets::{electronic_devices, photonic_devices, standard_devices};
pub use scaling::{scale_adc_power, scale_dac_power, ConverterScaling};
pub use spec::{DeviceSpec, DeviceSpecBuilder, Footprint};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_covers_all_breakdown_categories() {
        let lib = DeviceLibrary::standard();
        for kind in [
            DeviceKind::Laser,
            DeviceKind::Mzm,
            DeviceKind::Mzi,
            DeviceKind::Dac,
            DeviceKind::Adc,
            DeviceKind::Tia,
            DeviceKind::Integrator,
            DeviceKind::Photodetector,
            DeviceKind::YBranch,
            DeviceKind::Mmi,
            DeviceKind::Crossing,
            DeviceKind::PhaseShifterThermal,
        ] {
            assert!(
                lib.any_of_kind(kind).is_some(),
                "standard library is missing a {kind:?}"
            );
        }
    }

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceSpec>();
        assert_send_sync::<DeviceLibrary>();
        assert_send_sync::<PowerModel>();
        assert_send_sync::<DeviceError>();
    }
}
