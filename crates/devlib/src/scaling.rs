//! Converter power scaling with resolution and sampling rate.
//!
//! The paper's device library "supports power scaling with customized sampling
//! rates and bit resolutions, enabling power optimization via gating or
//! quantization". The models here follow the standard converter scaling laws:
//!
//! * DAC: power grows with the sampling rate and (roughly) with the number of
//!   output levels, `P ∝ f_s · (2^b − 1)`.
//! * ADC: Walden figure-of-merit scaling, `P ∝ f_s · 2^b`.

use serde::{Deserialize, Serialize};

use simphony_units::{BitWidth, Frequency, Power};

use crate::spec::DeviceSpec;

/// Scales a reference DAC power figure to a different resolution and sampling rate.
///
/// `P(b, f) = P_ref · (f / f_ref) · (2^b − 1) / (2^b_ref − 1)`
///
/// # Examples
///
/// ```
/// use simphony_devlib::scale_dac_power;
/// use simphony_units::{BitWidth, Frequency, Power};
///
/// let p8 = Power::from_milliwatts(26.0);
/// let p4 = scale_dac_power(p8, BitWidth::new(8), Frequency::from_gigahertz(10.0),
///                          BitWidth::new(4), Frequency::from_gigahertz(10.0));
/// assert!(p4.milliwatts() < p8.milliwatts() / 10.0);
/// ```
pub fn scale_dac_power(
    reference_power: Power,
    reference_bits: BitWidth,
    reference_rate: Frequency,
    target_bits: BitWidth,
    target_rate: Frequency,
) -> Power {
    let level_ratio = (target_bits.levels() as f64 - 1.0) / (reference_bits.levels() as f64 - 1.0);
    let rate_ratio = target_rate.hertz() / reference_rate.hertz();
    reference_power * (level_ratio * rate_ratio)
}

/// Scales a reference ADC power figure to a different resolution and sampling rate.
///
/// Uses the Walden figure of merit: `P(b, f) = P_ref · (f / f_ref) · 2^(b − b_ref)`.
///
/// # Examples
///
/// ```
/// use simphony_devlib::scale_adc_power;
/// use simphony_units::{BitWidth, Frequency, Power};
///
/// let p8 = Power::from_milliwatts(14.8);
/// let p6 = scale_adc_power(p8, BitWidth::new(8), Frequency::from_gigahertz(10.0),
///                          BitWidth::new(6), Frequency::from_gigahertz(10.0));
/// assert!((p6.milliwatts() - 3.7).abs() < 1e-9);
/// ```
pub fn scale_adc_power(
    reference_power: Power,
    reference_bits: BitWidth,
    reference_rate: Frequency,
    target_bits: BitWidth,
    target_rate: Frequency,
) -> Power {
    let bit_ratio = (target_bits.levels() as f64) / (reference_bits.levels() as f64);
    let rate_ratio = target_rate.hertz() / reference_rate.hertz();
    reference_power * (bit_ratio * rate_ratio)
}

/// Reference operating point used to rescale converter specs.
///
/// # Examples
///
/// ```
/// use simphony_devlib::{ConverterScaling, DeviceLibrary};
/// use simphony_units::{BitWidth, Frequency};
///
/// let lib = DeviceLibrary::standard();
/// let adc = lib.get("adc_8b_10gsps")?;
/// let scaling = ConverterScaling::new(BitWidth::new(8), Frequency::from_gigahertz(10.0));
/// let adc4 = scaling.rescale(adc, BitWidth::new(4), Frequency::from_gigahertz(5.0));
/// assert!(adc4.static_power().milliwatts() < adc.static_power().milliwatts());
/// # Ok::<(), simphony_devlib::DeviceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConverterScaling {
    reference_bits: BitWidth,
    reference_rate: Frequency,
}

impl ConverterScaling {
    /// Creates a scaling helper anchored at the given reference operating point.
    pub fn new(reference_bits: BitWidth, reference_rate: Frequency) -> Self {
        Self {
            reference_bits,
            reference_rate,
        }
    }

    /// The reference resolution.
    pub fn reference_bits(&self) -> BitWidth {
        self.reference_bits
    }

    /// The reference sampling rate.
    pub fn reference_rate(&self) -> Frequency {
        self.reference_rate
    }

    /// Returns a copy of `spec` with its static power, dynamic energy and
    /// converter annotations rescaled to the target resolution and rate.
    ///
    /// Non-converter specs are returned unchanged (their power does not follow
    /// converter scaling laws).
    pub fn rescale(&self, spec: &DeviceSpec, bits: BitWidth, rate: Frequency) -> DeviceSpec {
        if !spec.kind().is_converter() {
            return spec.clone();
        }
        let ref_bits = spec.resolution().unwrap_or(self.reference_bits);
        let ref_rate = spec.sampling_rate().unwrap_or(self.reference_rate);
        let scaled_power = match spec.kind() {
            crate::DeviceKind::Dac => {
                scale_dac_power(spec.static_power(), ref_bits, ref_rate, bits, rate)
            }
            _ => scale_adc_power(spec.static_power(), ref_bits, ref_rate, bits, rate),
        };
        spec.with_static_power(scaled_power)
            .with_converter_settings(bits, rate)
    }
}

impl Default for ConverterScaling {
    fn default() -> Self {
        Self::new(BitWidth::new(8), Frequency::from_gigahertz(10.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::DeviceKind;
    use crate::spec::Footprint;

    #[test]
    fn dac_power_scales_with_rate_linearly() {
        let p = scale_dac_power(
            Power::from_milliwatts(20.0),
            BitWidth::new(8),
            Frequency::from_gigahertz(10.0),
            BitWidth::new(8),
            Frequency::from_gigahertz(5.0),
        );
        assert!((p.milliwatts() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn adc_power_halves_per_bit_removed() {
        let p8 = Power::from_milliwatts(16.0);
        let p7 = scale_adc_power(
            p8,
            BitWidth::new(8),
            Frequency::from_gigahertz(10.0),
            BitWidth::new(7),
            Frequency::from_gigahertz(10.0),
        );
        assert!((p7.milliwatts() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn energy_increases_monotonically_with_bits() {
        // The Fig. 9(b) trend: higher precision costs more converter power.
        let mut last = 0.0;
        for bits in 2..=8 {
            let p = scale_adc_power(
                Power::from_milliwatts(14.8),
                BitWidth::new(8),
                Frequency::from_gigahertz(10.0),
                BitWidth::new(bits),
                Frequency::from_gigahertz(10.0),
            );
            assert!(p.milliwatts() > last);
            last = p.milliwatts();
        }
    }

    #[test]
    fn rescale_only_touches_converters() {
        let mzm = DeviceSpec::builder("mzm", DeviceKind::Mzm)
            .footprint(Footprint::from_um(250.0, 25.0))
            .static_power(Power::from_milliwatts(1.0))
            .build()
            .expect("valid");
        let scaling = ConverterScaling::default();
        let out = scaling.rescale(&mzm, BitWidth::new(4), Frequency::from_gigahertz(5.0));
        assert_eq!(out, mzm);

        let dac = DeviceSpec::builder("dac", DeviceKind::Dac)
            .static_power(Power::from_milliwatts(26.0))
            .resolution(BitWidth::new(8))
            .sampling_rate(Frequency::from_gigahertz(10.0))
            .build()
            .expect("valid");
        let out = scaling.rescale(&dac, BitWidth::new(4), Frequency::from_gigahertz(10.0));
        assert!(out.static_power().milliwatts() < 2.0);
        assert_eq!(out.resolution(), Some(BitWidth::new(4)));
    }
}
