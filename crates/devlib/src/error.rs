//! Error type for device-library operations.

use std::fmt;

/// Convenience alias for results whose error is [`DeviceError`].
pub type Result<T> = std::result::Result<T, DeviceError>;

/// Error returned by device-library construction and lookup.
///
/// # Examples
///
/// ```
/// use simphony_devlib::{DeviceLibrary, DeviceError};
///
/// let lib = DeviceLibrary::standard();
/// let err = lib.get("flux_capacitor").unwrap_err();
/// assert!(matches!(err, DeviceError::UnknownDevice { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A device name was not found in the library.
    UnknownDevice {
        /// The name that was looked up.
        name: String,
    },
    /// A device with the same name already exists and overwrite was not requested.
    DuplicateDevice {
        /// The conflicting name.
        name: String,
    },
    /// A builder was finalised with a missing or inconsistent field.
    InvalidSpec {
        /// Device name under construction.
        name: String,
        /// Explanation of what is wrong.
        reason: String,
    },
    /// A lookup table was constructed from unusable samples.
    InvalidLookupTable {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// A power-model query was made with an operand outside the model's domain
    /// and extrapolation was disabled.
    ValueOutOfDomain {
        /// The offending operand value.
        value: f64,
        /// Lower bound of the supported domain.
        min: f64,
        /// Upper bound of the supported domain.
        max: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnknownDevice { name } => write!(f, "unknown device `{name}`"),
            DeviceError::DuplicateDevice { name } => {
                write!(f, "device `{name}` is already registered")
            }
            DeviceError::InvalidSpec { name, reason } => {
                write!(f, "invalid specification for device `{name}`: {reason}")
            }
            DeviceError::InvalidLookupTable { reason } => {
                write!(f, "invalid lookup table: {reason}")
            }
            DeviceError::ValueOutOfDomain { value, min, max } => write!(
                f,
                "operand value {value} is outside the power model domain [{min}, {max}]"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = DeviceError::InvalidSpec {
            name: "mzm".into(),
            reason: "footprint missing".into(),
        };
        assert!(err.to_string().contains("mzm"));
        assert!(err.to_string().contains("footprint"));
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> =
            Box::new(DeviceError::UnknownDevice { name: "x".into() });
        assert!(err.source().is_none());
    }
}
