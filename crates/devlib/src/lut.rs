//! One-dimensional lookup tables for simulated or measured device responses.

use serde::{Deserialize, Serialize};

use crate::error::{DeviceError, Result};

/// A monotone-domain 1-D lookup table with linear interpolation.
///
/// Used to represent simulation- or measurement-backed device responses, e.g.
/// thermo-optic phase-shifter power vs. programmed phase, or MZM dynamic energy
/// vs. drive level. Queries outside the sampled domain clamp to the nearest
/// endpoint (device responses saturate physically), unless strict domain
/// checking is requested via [`LookupTable::value_at_strict`].
///
/// # Examples
///
/// ```
/// use simphony_devlib::LookupTable;
///
/// let table = LookupTable::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 8.0)])?;
/// assert!((table.value_at(0.5) - 1.0).abs() < 1e-12);
/// assert!((table.value_at(1.5) - 5.0).abs() < 1e-12);
/// # Ok::<(), simphony_devlib::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LookupTable {
    points: Vec<(f64, f64)>,
}

impl LookupTable {
    /// Builds a lookup table from `(input, output)` samples.
    ///
    /// Samples are sorted by input; duplicate inputs are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidLookupTable`] when fewer than two samples
    /// are given, any coordinate is not finite, or two samples share an input.
    pub fn new(mut points: Vec<(f64, f64)>) -> Result<Self> {
        if points.len() < 2 {
            return Err(DeviceError::InvalidLookupTable {
                reason: format!("need at least 2 samples, got {}", points.len()),
            });
        }
        if points.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(DeviceError::InvalidLookupTable {
                reason: "samples must be finite".to_string(),
            });
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite inputs are comparable"));
        if points.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(DeviceError::InvalidLookupTable {
                reason: "duplicate input samples".to_string(),
            });
        }
        Ok(Self { points })
    }

    /// The smallest sampled input.
    pub fn domain_min(&self) -> f64 {
        self.points.first().expect("table has >= 2 samples").0
    }

    /// The largest sampled input.
    pub fn domain_max(&self) -> f64 {
        self.points.last().expect("table has >= 2 samples").0
    }

    /// The sample points, sorted by input.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Linearly interpolated output at `x`, clamping outside the domain.
    pub fn value_at(&self, x: f64) -> f64 {
        if x <= self.domain_min() {
            return self.points.first().expect("non-empty").1;
        }
        if x >= self.domain_max() {
            return self.points.last().expect("non-empty").1;
        }
        // Find the bracketing segment.
        let idx = self
            .points
            .partition_point(|(px, _)| *px <= x)
            .saturating_sub(1);
        let (x0, y0) = self.points[idx];
        let (x1, y1) = self.points[idx + 1];
        let t = (x - x0) / (x1 - x0);
        y0 + t * (y1 - y0)
    }

    /// Linearly interpolated output at `x`, erroring outside the domain.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ValueOutOfDomain`] when `x` lies outside the
    /// sampled input range.
    pub fn value_at_strict(&self, x: f64) -> Result<f64> {
        if x < self.domain_min() || x > self.domain_max() {
            return Err(DeviceError::ValueOutOfDomain {
                value: x,
                min: self.domain_min(),
                max: self.domain_max(),
            });
        }
        Ok(self.value_at(x))
    }

    /// Mean output across the sampled domain (trapezoidal rule).
    ///
    /// Useful as a data-unaware fallback: if the workload values are unknown,
    /// the expected device power is approximated by the mean of its response.
    pub fn mean_value(&self) -> f64 {
        let mut integral = 0.0;
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            integral += 0.5 * (y0 + y1) * (x1 - x0);
        }
        integral / (self.domain_max() - self.domain_min())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LookupTable {
        LookupTable::new(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0), (4.0, 10.0)]).expect("valid")
    }

    #[test]
    fn interpolation_inside_segments() {
        let t = table();
        assert!((t.value_at(0.25) - 0.5).abs() < 1e-12);
        assert!((t.value_at(2.0) - 2.0).abs() < 1e-12);
        assert!((t.value_at(3.5) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_outside_domain() {
        let t = table();
        assert_eq!(t.value_at(-5.0), 0.0);
        assert_eq!(t.value_at(100.0), 10.0);
    }

    #[test]
    fn strict_lookup_errors_outside_domain() {
        let t = table();
        assert!(t.value_at_strict(-0.1).is_err());
        assert!(t.value_at_strict(4.1).is_err());
        assert!(t.value_at_strict(4.0).is_ok());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let t = LookupTable::new(vec![(2.0, 4.0), (0.0, 0.0), (1.0, 1.0)]).expect("valid");
        assert_eq!(t.domain_min(), 0.0);
        assert!((t.value_at(1.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_tables_are_rejected() {
        assert!(LookupTable::new(vec![(0.0, 1.0)]).is_err());
        assert!(LookupTable::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(LookupTable::new(vec![(0.0, f64::NAN), (1.0, 2.0)]).is_err());
    }

    #[test]
    fn mean_value_is_trapezoidal_average() {
        let t = LookupTable::new(vec![(0.0, 0.0), (1.0, 1.0)]).expect("valid");
        assert!((t.mean_value() - 0.5).abs() < 1e-12);
    }
}
