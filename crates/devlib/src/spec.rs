//! Device specifications: the per-component data sheet the analyzers consume.

use serde::{Deserialize, Serialize};
use std::fmt;

use simphony_units::{Area, BitWidth, Decibels, Energy, Frequency, Length, Power, Time};

use crate::error::{DeviceError, Result};
use crate::kind::{DeviceCategory, DeviceKind};
use crate::power::PowerModel;

/// Rectangular footprint of a device on the chip.
///
/// # Examples
///
/// ```
/// use simphony_devlib::Footprint;
/// use simphony_units::Length;
///
/// let f = Footprint::new(Length::from_um(300.0), Length::from_um(50.0));
/// assert!((f.area().square_micrometers() - 15_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    width: Length,
    height: Length,
}

impl Footprint {
    /// Creates a footprint from its width (along the optical signal flow) and height.
    pub fn new(width: Length, height: Length) -> Self {
        Self { width, height }
    }

    /// Convenience constructor taking micrometres directly.
    pub fn from_um(width_um: f64, height_um: f64) -> Self {
        Self::new(Length::from_um(width_um), Length::from_um(height_um))
    }

    /// Width along the signal-flow direction.
    pub fn width(&self) -> Length {
        self.width
    }

    /// Height perpendicular to the signal-flow direction.
    pub fn height(&self) -> Length {
        self.height
    }

    /// The rectangular area of the footprint.
    pub fn area(&self) -> Area {
        self.width * self.height
    }
}

impl Default for Footprint {
    fn default() -> Self {
        Self::from_um(0.0, 0.0)
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}x{:.1} um",
            self.width.micrometers(),
            self.height.micrometers()
        )
    }
}

/// Complete description of one device in the library.
///
/// A `DeviceSpec` is intentionally a plain data sheet: the analyzers in the
/// `simphony` crate interpret these numbers (e.g. counting instances and
/// accumulating power), so custom devices only need to fill in a spec — no
/// trait implementations are required to extend the library.
///
/// # Examples
///
/// ```
/// use simphony_devlib::{DeviceKind, DeviceSpec, Footprint};
/// use simphony_units::{Decibels, Power};
///
/// let spec = DeviceSpec::builder("my_mzm", DeviceKind::Mzm)
///     .footprint(Footprint::from_um(250.0, 25.0))
///     .insertion_loss(Decibels::from_db(0.8))
///     .static_power(Power::from_milliwatts(1.5))
///     .build()?;
/// assert_eq!(spec.name(), "my_mzm");
/// # Ok::<(), simphony_devlib::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    name: String,
    kind: DeviceKind,
    footprint: Footprint,
    insertion_loss: Decibels,
    static_power: Power,
    dynamic_energy_per_op: Energy,
    power_model: PowerModel,
    bandwidth: Frequency,
    reconfig_time: Time,
    resolution: Option<BitWidth>,
    sampling_rate: Option<Frequency>,
    extinction_ratio: Option<Decibels>,
    notes: String,
}

impl DeviceSpec {
    /// Starts building a spec for a device of the given kind.
    pub fn builder(name: impl Into<String>, kind: DeviceKind) -> DeviceSpecBuilder {
        DeviceSpecBuilder::new(name, kind)
    }

    /// Library name of this device.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What the device is.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Electrical or optical category, derived from the kind.
    pub fn category(&self) -> DeviceCategory {
        self.kind.category()
    }

    /// Physical footprint of one instance.
    pub fn footprint(&self) -> Footprint {
        self.footprint
    }

    /// Footprint area of one instance.
    pub fn area(&self) -> Area {
        self.footprint.area()
    }

    /// Optical insertion loss contributed when a signal traverses this device.
    pub fn insertion_loss(&self) -> Decibels {
        self.insertion_loss
    }

    /// Static (value-independent) power draw of one instance.
    pub fn static_power(&self) -> Power {
        self.static_power
    }

    /// Dynamic energy dissipated per operation (per conversion, per symbol, …).
    pub fn dynamic_energy_per_op(&self) -> Energy {
        self.dynamic_energy_per_op
    }

    /// Value-aware power model (see [`PowerModel`]).
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// Analog/electrical bandwidth of the device.
    pub fn bandwidth(&self) -> Frequency {
        self.bandwidth
    }

    /// Time needed to reprogram the device to a new operand/weight.
    pub fn reconfig_time(&self) -> Time {
        self.reconfig_time
    }

    /// Converter resolution, when the device is a DAC/ADC.
    pub fn resolution(&self) -> Option<BitWidth> {
        self.resolution
    }

    /// Converter sampling rate, when the device is a DAC/ADC.
    pub fn sampling_rate(&self) -> Option<Frequency> {
        self.sampling_rate
    }

    /// Modulation extinction ratio, when the device is a modulator.
    pub fn extinction_ratio(&self) -> Option<Decibels> {
        self.extinction_ratio
    }

    /// Free-form provenance notes (measurement source, PDK, …).
    pub fn notes(&self) -> &str {
        &self.notes
    }

    /// Power drawn when the device encodes `value` (normalised to its operand range).
    ///
    /// Falls back to the static power when the device has no value-aware model.
    pub fn power_at_value(&self, value: f64) -> Power {
        self.power_model.power_at(value).max(Power::ZERO)
    }

    /// Energy of one clocked operation: static power over one cycle plus the
    /// per-operation dynamic energy.
    pub fn energy_per_cycle(&self, clock: Frequency) -> Energy {
        self.static_power * clock.period() + self.dynamic_energy_per_op
    }

    /// Returns a copy of this spec under a different name (useful when a
    /// template device is instantiated with several parameterisations).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        let mut copy = self.clone();
        copy.name = name.into();
        copy
    }

    /// Returns a copy with a different static power (used by converter scaling).
    pub fn with_static_power(&self, power: Power) -> Self {
        let mut copy = self.clone();
        copy.static_power = power;
        copy
    }

    /// Returns a copy with a different resolution/sampling-rate annotation.
    pub fn with_converter_settings(&self, resolution: BitWidth, rate: Frequency) -> Self {
        let mut copy = self.clone();
        copy.resolution = Some(resolution);
        copy.sampling_rate = Some(rate);
        copy
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} | IL {} | {}",
            self.name, self.kind, self.footprint, self.insertion_loss, self.static_power
        )
    }
}

/// Builder for [`DeviceSpec`] (C-BUILDER).
///
/// Only the name and kind are mandatory; everything else defaults to zero /
/// `None`, matching an ideal lossless, power-free component, so tests can build
/// minimal specs and presets override what matters.
#[derive(Debug, Clone)]
pub struct DeviceSpecBuilder {
    name: String,
    kind: DeviceKind,
    footprint: Footprint,
    insertion_loss: Decibels,
    static_power: Power,
    dynamic_energy_per_op: Energy,
    power_model: Option<PowerModel>,
    bandwidth: Frequency,
    reconfig_time: Time,
    resolution: Option<BitWidth>,
    sampling_rate: Option<Frequency>,
    extinction_ratio: Option<Decibels>,
    notes: String,
}

impl DeviceSpecBuilder {
    /// Starts a builder for a device of the given kind.
    pub fn new(name: impl Into<String>, kind: DeviceKind) -> Self {
        Self {
            name: name.into(),
            kind,
            footprint: Footprint::default(),
            insertion_loss: Decibels::ZERO,
            static_power: Power::ZERO,
            dynamic_energy_per_op: Energy::ZERO,
            power_model: None,
            bandwidth: Frequency::from_gigahertz(10.0),
            reconfig_time: Time::ZERO,
            resolution: None,
            sampling_rate: None,
            extinction_ratio: None,
            notes: String::new(),
        }
    }

    /// Sets the physical footprint.
    pub fn footprint(mut self, footprint: Footprint) -> Self {
        self.footprint = footprint;
        self
    }

    /// Sets the optical insertion loss.
    pub fn insertion_loss(mut self, il: Decibels) -> Self {
        self.insertion_loss = il;
        self
    }

    /// Sets the static power draw.
    pub fn static_power(mut self, power: Power) -> Self {
        self.static_power = power;
        self
    }

    /// Sets the dynamic per-operation energy.
    pub fn dynamic_energy_per_op(mut self, energy: Energy) -> Self {
        self.dynamic_energy_per_op = energy;
        self
    }

    /// Sets a value-aware power model. Defaults to `Static(static_power)`.
    pub fn power_model(mut self, model: PowerModel) -> Self {
        self.power_model = Some(model);
        self
    }

    /// Sets the analog bandwidth.
    pub fn bandwidth(mut self, bandwidth: Frequency) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the reconfiguration (reprogramming) time.
    pub fn reconfig_time(mut self, time: Time) -> Self {
        self.reconfig_time = time;
        self
    }

    /// Sets the converter resolution.
    pub fn resolution(mut self, bits: BitWidth) -> Self {
        self.resolution = Some(bits);
        self
    }

    /// Sets the converter sampling rate.
    pub fn sampling_rate(mut self, rate: Frequency) -> Self {
        self.sampling_rate = Some(rate);
        self
    }

    /// Sets the modulation extinction ratio.
    pub fn extinction_ratio(mut self, er: Decibels) -> Self {
        self.extinction_ratio = Some(er);
        self
    }

    /// Attaches provenance notes.
    pub fn notes(mut self, notes: impl Into<String>) -> Self {
        self.notes = notes.into();
        self
    }

    /// Finalises the spec.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidSpec`] when the name is empty, any physical
    /// quantity is negative or non-finite, or converter settings are attached to
    /// a device that is not a converter.
    pub fn build(self) -> Result<DeviceSpec> {
        let invalid = |reason: &str| DeviceError::InvalidSpec {
            name: self.name.clone(),
            reason: reason.to_string(),
        };
        if self.name.trim().is_empty() {
            return Err(invalid("device name must not be empty"));
        }
        self.footprint
            .width()
            .validated("footprint width")
            .map_err(|e| invalid(&e.to_string()))?;
        self.footprint
            .height()
            .validated("footprint height")
            .map_err(|e| invalid(&e.to_string()))?;
        self.insertion_loss
            .validated("insertion loss")
            .map_err(|e| invalid(&e.to_string()))?;
        self.static_power
            .validated("static power")
            .map_err(|e| invalid(&e.to_string()))?;
        self.dynamic_energy_per_op
            .validated("dynamic energy")
            .map_err(|e| invalid(&e.to_string()))?;
        self.reconfig_time
            .validated("reconfiguration time")
            .map_err(|e| invalid(&e.to_string()))?;
        if (self.resolution.is_some() || self.sampling_rate.is_some()) && !self.kind.is_converter()
        {
            return Err(invalid(
                "resolution/sampling rate only apply to DAC/ADC devices",
            ));
        }
        let power_model = self
            .power_model
            .unwrap_or(PowerModel::Static(self.static_power));
        Ok(DeviceSpec {
            name: self.name,
            kind: self.kind,
            footprint: self.footprint,
            insertion_loss: self.insertion_loss,
            static_power: self.static_power,
            dynamic_energy_per_op: self.dynamic_energy_per_op,
            power_model,
            bandwidth: self.bandwidth,
            reconfig_time: self.reconfig_time,
            resolution: self.resolution,
            sampling_rate: self.sampling_rate,
            extinction_ratio: self.extinction_ratio,
            notes: self.notes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mzm() -> DeviceSpec {
        DeviceSpec::builder("mzm", DeviceKind::Mzm)
            .footprint(Footprint::from_um(250.0, 25.0))
            .insertion_loss(Decibels::from_db(0.8))
            .static_power(Power::from_milliwatts(1.0))
            .dynamic_energy_per_op(Energy::from_femtojoules(60.0))
            .build()
            .expect("valid spec")
    }

    #[test]
    fn builder_produces_consistent_spec() {
        let spec = mzm();
        assert_eq!(spec.kind(), DeviceKind::Mzm);
        assert_eq!(spec.category(), DeviceCategory::Optical);
        assert!((spec.area().square_micrometers() - 6250.0).abs() < 1e-6);
    }

    #[test]
    fn energy_per_cycle_combines_static_and_dynamic() {
        let spec = mzm();
        let e = spec.energy_per_cycle(Frequency::from_gigahertz(5.0));
        // 1 mW * 0.2 ns = 0.2 pJ, + 0.06 pJ dynamic.
        assert!((e.picojoules() - 0.26).abs() < 1e-9);
    }

    #[test]
    fn empty_name_is_rejected() {
        let err = DeviceSpec::builder("  ", DeviceKind::Adc).build();
        assert!(matches!(err, Err(DeviceError::InvalidSpec { .. })));
    }

    #[test]
    fn converter_settings_on_non_converter_are_rejected() {
        let err = DeviceSpec::builder("mzm", DeviceKind::Mzm)
            .resolution(BitWidth::new(8))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn negative_quantities_are_rejected() {
        let err = DeviceSpec::builder("bad", DeviceKind::Adc)
            .static_power(Power::from_milliwatts(-1.0))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn renamed_and_with_power_preserve_other_fields() {
        let spec = mzm();
        let renamed = spec.renamed("mzm_b");
        assert_eq!(renamed.name(), "mzm_b");
        assert_eq!(renamed.kind(), spec.kind());
        let repowered = spec.with_static_power(Power::from_milliwatts(2.0));
        assert!((repowered.static_power().milliwatts() - 2.0).abs() < 1e-12);
        assert_eq!(repowered.footprint(), spec.footprint());
    }

    #[test]
    fn default_power_model_matches_static_power() {
        let spec = mzm();
        assert!(
            (spec.power_at_value(0.3).milliwatts() - spec.static_power().milliwatts()).abs()
                < 1e-12
        );
    }

    #[test]
    fn display_mentions_name_and_kind() {
        let text = mzm().to_string();
        assert!(text.contains("mzm"));
        assert!(text.contains("MZM"));
    }
}
