//! The standard device library shipped with SimPhony-RS.
//!
//! Every figure quoted here is a *representative* published value for a silicon
//! photonic platform (the paper's own numbers come from Lumerical HEAT
//! simulations and chip measurements we do not have access to). The values are
//! chosen so the relative breakdowns — which device classes dominate area and
//! energy — match the trends reported in the paper's validation figures. All
//! provenance is recorded in each spec's `notes` field.

use simphony_units::{BitWidth, Decibels, Energy, Frequency, Power, Time};

use crate::kind::DeviceKind;
use crate::lut::LookupTable;
use crate::power::{PowerFidelity, PowerModel};
use crate::spec::{DeviceSpec, Footprint};

fn build(builder: crate::spec::DeviceSpecBuilder) -> DeviceSpec {
    builder
        .build()
        .expect("preset device specifications are valid by construction")
}

/// Thermal phase-shifter Pπ used by the analytical model, in milliwatts.
pub(crate) const THERMAL_PS_PI_POWER_MW: f64 = 20.0;

/// Measured-style thermal phase-shifter response (normalised phase → mW).
///
/// Slightly sub-linear relative to the analytical `Pπ·φ/π` line, reproducing the
/// Fig. 10(b) observation that rigorous device models yield lower energy than
/// the analytical approximation.
pub(crate) fn thermal_ps_measured_table() -> LookupTable {
    LookupTable::new(vec![
        (0.0, 0.0),
        (0.125, 2.3),
        (0.25, 4.6),
        (0.375, 7.0),
        (0.5, 9.4),
        (0.625, 11.8),
        (0.75, 14.3),
        (0.875, 16.8),
        (1.0, 19.4),
    ])
    .expect("static table data is valid")
}

/// All photonic devices in the standard library.
///
/// # Examples
///
/// ```
/// use simphony_devlib::photonic_devices;
///
/// let devices = photonic_devices();
/// assert!(devices.iter().any(|d| d.name() == "mzi_thermal"));
/// ```
pub fn photonic_devices() -> Vec<DeviceSpec> {
    vec![
        build(
            DeviceSpec::builder("laser_cw", DeviceKind::Laser)
                .footprint(Footprint::from_um(400.0, 300.0))
                .static_power(Power::from_milliwatts(0.0))
                .notes("continuous-wave DFB laser; electrical power set by link budget (wall-plug efficiency 20%)"),
        ),
        build(
            DeviceSpec::builder("micro_comb", DeviceKind::MicroComb)
                .footprint(Footprint::from_um(600.0, 600.0))
                .static_power(Power::from_milliwatts(50.0))
                .insertion_loss(Decibels::from_db(2.0))
                .notes("Kerr micro-comb providing multi-wavelength carriers"),
        ),
        build(
            DeviceSpec::builder("edge_coupler", DeviceKind::Coupling)
                .footprint(Footprint::from_um(150.0, 30.0))
                .insertion_loss(Decibels::from_db(1.0))
                .notes("fibre-to-chip edge coupler, 1 dB/facet"),
        ),
        build(
            DeviceSpec::builder("mzm_eo", DeviceKind::Mzm)
                .footprint(Footprint::from_um(300.0, 50.0))
                .insertion_loss(Decibels::from_db(0.8))
                .static_power(Power::from_milliwatts(1.2))
                .dynamic_energy_per_op(Energy::from_femtojoules(60.0))
                .bandwidth(Frequency::from_gigahertz(40.0))
                .extinction_ratio(Decibels::from_db(8.0))
                .reconfig_time(Time::from_picoseconds(25.0))
                .notes("compact slow-light electro-optic MZM for high-speed operand encoding (TeMPO-style)"),
        ),
        build(
            DeviceSpec::builder("mzi_thermal", DeviceKind::Mzi)
                .footprint(Footprint::from_um(300.0, 120.0))
                .insertion_loss(Decibels::from_db(0.3))
                .static_power(Power::from_milliwatts(2.0 * THERMAL_PS_PI_POWER_MW * 0.5))
                .power_model(PowerModel::linear(
                    Power::ZERO,
                    Power::from_milliwatts(2.0 * THERMAL_PS_PI_POWER_MW),
                ))
                .bandwidth(Frequency::from_megahertz(0.1))
                .reconfig_time(Time::from_microseconds(10.0))
                .notes("Clements-mesh 2x2 MZI with two thermo-optic phase shifters"),
        ),
        build(
            DeviceSpec::builder("mrr_weight", DeviceKind::Mrr)
                .footprint(Footprint::from_um(20.0, 20.0))
                .insertion_loss(Decibels::from_db(0.5))
                .static_power(Power::from_milliwatts(3.0))
                .power_model(PowerModel::linear(
                    Power::from_milliwatts(0.4),
                    Power::from_milliwatts(6.0),
                ))
                .bandwidth(Frequency::from_gigahertz(5.0))
                .reconfig_time(Time::from_nanoseconds(10.0))
                .notes("micro-ring weight-bank element, thermally trimmed"),
        ),
        build(
            DeviceSpec::builder("ps_thermal", DeviceKind::PhaseShifterThermal)
                .footprint(Footprint::from_um(100.0, 20.0))
                .insertion_loss(Decibels::from_db(0.2))
                .static_power(Power::from_milliwatts(THERMAL_PS_PI_POWER_MW))
                .power_model(PowerModel::linear(
                    Power::ZERO,
                    Power::from_milliwatts(THERMAL_PS_PI_POWER_MW),
                ))
                .bandwidth(Frequency::from_megahertz(0.1))
                .reconfig_time(Time::from_microseconds(10.0))
                .notes("TiN heater thermo-optic phase shifter, Ppi = 20 mW, tau = 10 us"),
        ),
        build(
            DeviceSpec::builder("ps_thermal_measured", DeviceKind::PhaseShifterThermal)
                .footprint(Footprint::from_um(100.0, 20.0))
                .insertion_loss(Decibels::from_db(0.2))
                .static_power(Power::from_milliwatts(THERMAL_PS_PI_POWER_MW))
                .power_model(PowerModel::lookup(
                    thermal_ps_measured_table(),
                    PowerFidelity::Measured,
                ))
                .bandwidth(Frequency::from_megahertz(0.1))
                .reconfig_time(Time::from_microseconds(10.0))
                .notes("same heater with a measurement-backed power response table"),
        ),
        build(
            DeviceSpec::builder("ps_eo", DeviceKind::PhaseShifterEo)
                .footprint(Footprint::from_um(120.0, 25.0))
                .insertion_loss(Decibels::from_db(0.5))
                .static_power(Power::from_milliwatts(0.5))
                .dynamic_energy_per_op(Energy::from_femtojoules(35.0))
                .bandwidth(Frequency::from_gigahertz(30.0))
                .reconfig_time(Time::from_picoseconds(50.0))
                .notes("depletion-mode electro-optic phase shifter"),
        ),
        build(
            DeviceSpec::builder("pcm_cell", DeviceKind::PcmCell)
                .footprint(Footprint::from_um(15.0, 15.0))
                .insertion_loss(Decibels::from_db(0.6))
                .static_power(Power::ZERO)
                .dynamic_energy_per_op(Energy::from_picojoules(15.0))
                .bandwidth(Frequency::from_gigahertz(1.0))
                .reconfig_time(Time::from_nanoseconds(100.0))
                .notes("non-volatile GST phase-change cell; zero static hold power, >100 ns write"),
        ),
        build(
            DeviceSpec::builder("y_branch", DeviceKind::YBranch)
                .footprint(Footprint::from_um(20.0, 10.0))
                .insertion_loss(Decibels::from_db(0.1))
                .notes("1x2 adiabatic Y-branch splitter"),
        ),
        build(
            DeviceSpec::builder("mmi_1x2", DeviceKind::Mmi)
                .footprint(Footprint::from_um(50.0, 20.0))
                .insertion_loss(Decibels::from_db(0.3))
                .notes("1x2 multi-mode interference splitter/combiner"),
        ),
        build(
            DeviceSpec::builder("crossing", DeviceKind::Crossing)
                .footprint(Footprint::from_um(10.0, 10.0))
                .insertion_loss(Decibels::from_db(0.1))
                .notes("low-loss waveguide crossing"),
        ),
        build(
            DeviceSpec::builder("photodetector", DeviceKind::Photodetector)
                .footprint(Footprint::from_um(30.0, 15.0))
                .insertion_loss(Decibels::from_db(0.5))
                .static_power(Power::from_milliwatts(0.3))
                .dynamic_energy_per_op(Energy::from_femtojoules(10.0))
                .bandwidth(Frequency::from_gigahertz(40.0))
                .notes("Ge-on-Si photodetector, -25 dBm sensitivity class"),
        ),
    ]
}

/// All electronic devices in the standard library.
///
/// # Examples
///
/// ```
/// use simphony_devlib::electronic_devices;
///
/// let devices = electronic_devices();
/// assert!(devices.iter().any(|d| d.name() == "adc_8b_10gsps"));
/// ```
pub fn electronic_devices() -> Vec<DeviceSpec> {
    vec![
        build(
            DeviceSpec::builder("dac_8b_10gsps", DeviceKind::Dac)
                .footprint(Footprint::from_um(60.0, 60.0))
                .static_power(Power::from_milliwatts(26.0))
                .dynamic_energy_per_op(Energy::from_femtojoules(250.0))
                .bandwidth(Frequency::from_gigahertz(10.0))
                .resolution(BitWidth::new(8))
                .sampling_rate(Frequency::from_gigahertz(10.0))
                .notes("current-steering DAC, 8-bit @ 10 GS/s reference point"),
        ),
        build(
            DeviceSpec::builder("adc_8b_10gsps", DeviceKind::Adc)
                .footprint(Footprint::from_um(120.0, 90.0))
                .static_power(Power::from_milliwatts(14.8))
                .dynamic_energy_per_op(Energy::from_femtojoules(500.0))
                .bandwidth(Frequency::from_gigahertz(10.0))
                .resolution(BitWidth::new(8))
                .sampling_rate(Frequency::from_gigahertz(10.0))
                .notes("SAR ADC, 8-bit @ 10 GS/s reference point (Walden FoM scaling)"),
        ),
        build(
            DeviceSpec::builder("tia", DeviceKind::Tia)
                .footprint(Footprint::from_um(50.0, 40.0))
                .static_power(Power::from_milliwatts(3.0))
                .dynamic_energy_per_op(Energy::from_femtojoules(50.0))
                .bandwidth(Frequency::from_gigahertz(40.0))
                .notes("transimpedance amplifier following each photodetector"),
        ),
        build(
            DeviceSpec::builder("integrator", DeviceKind::Integrator)
                .footprint(Footprint::from_um(40.0, 30.0))
                .static_power(Power::from_milliwatts(0.8))
                .dynamic_energy_per_op(Energy::from_femtojoules(20.0))
                .bandwidth(Frequency::from_gigahertz(10.0))
                .notes("analog charge integrator for temporal partial-sum accumulation"),
        ),
        build(
            DeviceSpec::builder("sram_macro", DeviceKind::SramMacro)
                .footprint(Footprint::from_um(200.0, 200.0))
                .static_power(Power::from_milliwatts(5.0))
                .notes("placeholder SRAM macro; detailed modeling lives in simphony-memsim"),
        ),
        build(
            DeviceSpec::builder("hbm_phy", DeviceKind::HbmPhy)
                .footprint(Footprint::from_um(1000.0, 500.0))
                .static_power(Power::from_milliwatts(250.0))
                .notes("off-chip HBM interface PHY"),
        ),
        build(
            DeviceSpec::builder("digital_control", DeviceKind::DigitalControl)
                .footprint(Footprint::from_um(150.0, 150.0))
                .static_power(Power::from_milliwatts(10.0))
                .notes("sequencing, accumulation and control logic"),
        ),
    ]
}

/// The full standard library: photonic plus electronic devices.
///
/// # Examples
///
/// ```
/// use simphony_devlib::standard_devices;
///
/// assert!(standard_devices().len() >= 20);
/// ```
pub fn standard_devices() -> Vec<DeviceSpec> {
    let mut all = photonic_devices();
    all.extend(electronic_devices());
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::DeviceCategory;

    #[test]
    fn preset_names_are_unique() {
        let devices = standard_devices();
        let mut names: Vec<_> = devices.iter().map(|d| d.name().to_string()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn photonic_presets_are_optical() {
        for d in photonic_devices() {
            assert_eq!(d.category(), DeviceCategory::Optical, "{}", d.name());
        }
    }

    #[test]
    fn electronic_presets_are_electrical() {
        for d in electronic_devices() {
            assert_eq!(d.category(), DeviceCategory::Electrical, "{}", d.name());
        }
    }

    #[test]
    fn passive_devices_draw_no_power() {
        for d in standard_devices() {
            if d.kind().is_passive() {
                assert!(d.static_power().is_zero(), "{} should be passive", d.name());
            }
        }
    }

    #[test]
    fn thermal_ps_measured_is_below_analytical_everywhere_inside() {
        let table = thermal_ps_measured_table();
        for &(phase, mw) in table.points() {
            assert!(
                mw <= THERMAL_PS_PI_POWER_MW * phase + 1e-9,
                "measured response should not exceed the analytical line"
            );
        }
    }

    #[test]
    fn slow_devices_have_long_reconfiguration_times() {
        let devices = standard_devices();
        let mzi = devices
            .iter()
            .find(|d| d.name() == "mzi_thermal")
            .expect("preset");
        let mzm = devices
            .iter()
            .find(|d| d.name() == "mzm_eo")
            .expect("preset");
        assert!(mzi.reconfig_time().seconds() > 1000.0 * mzm.reconfig_time().seconds());
    }
}
