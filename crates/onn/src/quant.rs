//! Quantisation settings for analog operand encoding.

use serde::{Deserialize, Serialize};
use std::fmt;

use simphony_units::BitWidth;

/// Bit widths of the three tensors of a GEMM layer.
///
/// DAC resolution bounds the input/weight precision, ADC resolution the output
/// precision; the bandwidth/energy of the converters then scales accordingly
/// (see [`simphony_devlib::scale_adc_power`]).
///
/// # Examples
///
/// ```
/// use simphony_onn::QuantConfig;
/// use simphony_units::BitWidth;
///
/// let q = QuantConfig::uniform(BitWidth::new(6));
/// assert_eq!(q.weight_bits().bits(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantConfig {
    weight_bits: BitWidth,
    input_bits: BitWidth,
    output_bits: BitWidth,
}

impl QuantConfig {
    /// Creates a configuration with independent precisions.
    pub fn new(weight_bits: BitWidth, input_bits: BitWidth, output_bits: BitWidth) -> Self {
        Self {
            weight_bits,
            input_bits,
            output_bits,
        }
    }

    /// Creates a configuration using the same precision everywhere.
    pub fn uniform(bits: BitWidth) -> Self {
        Self::new(bits, bits, bits)
    }

    /// Weight precision.
    pub fn weight_bits(&self) -> BitWidth {
        self.weight_bits
    }

    /// Input/activation precision.
    pub fn input_bits(&self) -> BitWidth {
        self.input_bits
    }

    /// Output precision (ADC resolution).
    pub fn output_bits(&self) -> BitWidth {
        self.output_bits
    }
}

impl Default for QuantConfig {
    /// 8-bit everywhere, the paper's default evaluation precision.
    fn default() -> Self {
        Self::uniform(BitWidth::new(8))
    }
}

impl fmt::Display for QuantConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "W{}A{}O{}",
            self.weight_bits.bits(),
            self.input_bits.bits(),
            self.output_bits.bits()
        )
    }
}

/// Quantises a value in `[-1, 1]` to the grid representable with `bits` bits
/// (symmetric mid-rise quantiser).
///
/// # Examples
///
/// ```
/// use simphony_onn::quantize_symmetric;
/// use simphony_units::BitWidth;
///
/// let q = quantize_symmetric(0.33, BitWidth::new(2));
/// assert!((q - 0.5).abs() < 1e-6 || (q - 0.0).abs() < 1e-6);
/// ```
pub fn quantize_symmetric(value: f32, bits: BitWidth) -> f32 {
    let levels = (bits.levels() / 2).max(1) as f32;
    let clamped = value.clamp(-1.0, 1.0);
    (clamped * levels).round() / levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantisation_error_shrinks_with_bits() {
        let value = 0.337_f32;
        let mut last_err = f32::INFINITY;
        for bits in [2u8, 4, 6, 8] {
            let err = (quantize_symmetric(value, BitWidth::new(bits)) - value).abs();
            assert!(err <= last_err + 1e-9);
            last_err = err;
        }
    }

    #[test]
    fn quantisation_clamps_out_of_range_values() {
        assert_eq!(quantize_symmetric(7.0, BitWidth::new(8)), 1.0);
        assert_eq!(quantize_symmetric(-7.0, BitWidth::new(8)), -1.0);
    }

    #[test]
    fn uniform_config_uses_one_precision() {
        let q = QuantConfig::uniform(BitWidth::new(4));
        assert_eq!(q.weight_bits(), q.input_bits());
        assert_eq!(q.to_string(), "W4A4O4");
    }

    #[test]
    fn zero_survives_quantisation_exactly() {
        for bits in [2u8, 3, 8] {
            assert_eq!(quantize_symmetric(0.0, BitWidth::new(bits)), 0.0);
        }
    }
}
