//! Deterministic pseudo-random number generation for synthetic weights/activations.
//!
//! Workload extraction needs *reproducible* value distributions (the data-aware
//! energy experiments must give the same answer on every run), so this module
//! provides a small SplitMix64 generator instead of depending on a seeded
//! external RNG.

/// A SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use simphony_onn::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[-1, 1)`.
    pub fn next_signed(&mut self) -> f64 {
        self.next_f64() * 2.0 - 1.0
    }

    /// Approximately normal value (mean 0, unit variance) via the sum of twelve
    /// uniforms — adequate for synthetic weight distributions.
    pub fn next_gaussian(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        sum - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_values_are_in_range_and_well_spread() {
        let mut rng = SplitMix64::new(123);
        let values: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gaussian_has_roughly_unit_variance() {
        let mut rng = SplitMix64::new(9);
        let values: Vec<f64> = (0..10_000).map(|_| rng.next_gaussian()).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 1.0).abs() < 0.1);
    }
}
