//! Digital-to-ONN model conversion.
//!
//! The paper converts a digital DNN "to its analog optical version with
//! layer-wise conversion, e.g. Conv2d to TeMPOConv2d", trained with device
//! non-idealities. SimPhony-RS does not train models; this module performs the
//! structural conversion (recording which photonic layer implementation backs
//! each digital layer) and provides a noise-injection helper so examples can
//! demonstrate non-ideality-aware evaluation on the small [`Tensor`] type.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::layer::{LayerKind, NamedLayer};
use crate::models::Model;
use crate::rng::SplitMix64;
use crate::tensor::Tensor;

/// Device non-idealities applied during conversion-aware evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Standard deviation of multiplicative weight noise (phase/drive error).
    pub weight_noise_std: f64,
    /// Standard deviation of additive output noise (shot/thermal/ADC noise),
    /// relative to the full-scale output.
    pub output_noise_std: f64,
}

impl NoiseConfig {
    /// No non-idealities.
    pub fn ideal() -> Self {
        Self {
            weight_noise_std: 0.0,
            output_noise_std: 0.0,
        }
    }

    /// Typical calibrated-chip noise levels.
    pub fn typical() -> Self {
        Self {
            weight_noise_std: 0.01,
            output_noise_std: 0.005,
        }
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

impl fmt::Display for NoiseConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weight noise {:.3}, output noise {:.3}",
            self.weight_noise_std, self.output_noise_std
        )
    }
}

/// One digital layer together with the photonic layer type that replaces it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvertedLayer {
    /// The original digital layer.
    pub original: NamedLayer,
    /// Name of the ONN layer implementation (e.g. `TeMPOConv2d`), or `None`
    /// when the layer is offloaded to the electrical processor.
    pub onn_type: Option<String>,
}

/// A digital model converted layer-by-layer to its optical counterpart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnnModel {
    name: String,
    target: String,
    layers: Vec<ConvertedLayer>,
    noise: NoiseConfig,
}

impl OnnModel {
    /// The converted model name (`<model>_on_<target>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The PTC family the GEMM layers were converted to.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The converted layers in execution order.
    pub fn layers(&self) -> &[ConvertedLayer] {
        &self.layers
    }

    /// Noise configuration attached at conversion time.
    pub fn noise(&self) -> NoiseConfig {
        self.noise
    }

    /// Number of layers mapped onto photonic hardware.
    pub fn photonic_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.onn_type.is_some()).count()
    }
}

impl fmt::Display for OnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} photonic / {} total layers)",
            self.name,
            self.photonic_layer_count(),
            self.layers.len()
        )
    }
}

/// Converts a digital model to its optical version targeting one PTC family
/// (e.g. `"TeMPO"`, `"MZIMesh"`, `"SCATTER"`).
///
/// # Examples
///
/// ```
/// use simphony_onn::{convert_model, NoiseConfig};
/// use simphony_onn::models::vgg8_cifar10;
///
/// let onn = convert_model(&vgg8_cifar10(), "TeMPO", NoiseConfig::typical());
/// assert_eq!(onn.photonic_layer_count(), 8);
/// assert!(onn.layers().iter().any(|l| l.onn_type.as_deref() == Some("TeMPOConv2d")));
/// ```
pub fn convert_model(model: &Model, target: &str, noise: NoiseConfig) -> OnnModel {
    let layers = model
        .layers()
        .iter()
        .map(|layer| {
            let onn_type = match layer.spec.kind() {
                LayerKind::Conv2d => Some(format!("{target}Conv2d")),
                LayerKind::Linear => Some(format!("{target}Linear")),
                LayerKind::Attention => Some(format!("{target}Attention")),
                LayerKind::Activation | LayerKind::Pooling | LayerKind::Normalization => None,
            };
            ConvertedLayer {
                original: layer.clone(),
                onn_type,
            }
        })
        .collect();
    OnnModel {
        name: format!("{}_on_{}", model.name(), target.to_ascii_lowercase()),
        target: target.to_string(),
        layers,
        noise,
    }
}

/// Applies multiplicative weight noise to a tensor, modeling imperfect analog
/// weight programming. Returns a new tensor; `seed` makes the noise
/// reproducible.
pub fn apply_weight_noise(weights: &Tensor, noise: &NoiseConfig, seed: u64) -> Tensor {
    if noise.weight_noise_std == 0.0 {
        return weights.clone();
    }
    let mut rng = SplitMix64::new(seed);
    let mut noisy = weights.clone();
    for value in noisy.values_mut() {
        let factor = 1.0 + noise.weight_noise_std * rng.next_gaussian();
        *value *= factor as f32;
    }
    noisy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{bert_base, vgg8_cifar10};

    #[test]
    fn conversion_maps_each_gemm_layer_kind() {
        let onn = convert_model(&bert_base(196), "TeMPO", NoiseConfig::ideal());
        assert!(onn
            .layers()
            .iter()
            .any(|l| l.onn_type.as_deref() == Some("TeMPOAttention")));
        assert!(onn
            .layers()
            .iter()
            .any(|l| l.onn_type.as_deref() == Some("TeMPOLinear")));
    }

    #[test]
    fn non_gemm_layers_stay_electrical() {
        let onn = convert_model(&vgg8_cifar10(), "SCATTER", NoiseConfig::ideal());
        let offloaded = onn.layers().iter().filter(|l| l.onn_type.is_none()).count();
        assert_eq!(offloaded, onn.layers().len() - onn.photonic_layer_count());
        assert!(offloaded > 0);
    }

    #[test]
    fn weight_noise_perturbs_but_preserves_shape() {
        let w = Tensor::random_normal(&[8, 8], 3);
        let noisy = apply_weight_noise(&w, &NoiseConfig::typical(), 11);
        assert_eq!(noisy.shape(), w.shape());
        assert_ne!(noisy, w);
        // The relative perturbation stays small.
        let max_rel: f32 = w
            .values()
            .iter()
            .zip(noisy.values())
            .filter(|(orig, _)| orig.abs() > 1e-6)
            .map(|(orig, new)| ((new - orig) / orig).abs())
            .fold(0.0, f32::max);
        assert!(max_rel < 0.1, "relative perturbation {max_rel} too large");
    }

    #[test]
    fn ideal_noise_is_the_identity() {
        let w = Tensor::random_normal(&[4, 4], 5);
        assert_eq!(apply_weight_noise(&w, &NoiseConfig::ideal(), 1), w);
    }

    #[test]
    fn converted_name_mentions_model_and_target() {
        let onn = convert_model(&vgg8_cifar10(), "MZIMesh", NoiseConfig::ideal());
        assert_eq!(onn.name(), "vgg8_cifar10_on_mzimesh");
        assert_eq!(onn.target(), "MZIMesh");
    }
}
