//! Optical-neural-network model substrate (TorchONN substitute).
//!
//! SimPhony interfaces with an ONN training library to obtain *workload
//! descriptions*: per-layer GEMM shapes, operand bit widths, sparsity and the
//! actual weight values needed for data-aware power modeling. This crate
//! provides that interface without an external ML framework:
//!
//! * [`Tensor`], [`SplitMix64`] — a minimal dense tensor with deterministic
//!   synthetic initialisation and a reference matmul;
//! * [`LayerSpec`]/[`models`] — layer and model descriptions, including the
//!   paper's evaluation models (VGG-8/CIFAR-10, BERT-Base, the 280×28×280
//!   validation GEMM);
//! * [`GemmShape`] and lowering functions — im2col convolution, linear and
//!   multi-head-attention → GEMM decomposition, with dynamic-product flags;
//! * [`QuantConfig`], [`PruningConfig`] — quantisation and magnitude pruning;
//! * [`convert_model`] — layer-wise digital → ONN conversion with a noise model;
//! * [`ModelWorkload::extract`] — the end product the simulator consumes.
//!
//! # Examples
//!
//! ```
//! use simphony_onn::{ModelWorkload, PruningConfig, QuantConfig};
//! use simphony_onn::models::bert_base;
//!
//! let workload = ModelWorkload::extract(
//!     &bert_base(196),
//!     &QuantConfig::default(),
//!     &PruningConfig::dense(),
//!     42,
//! )?;
//! println!("{workload}");
//! assert!(workload.dynamic_fraction() > 0.0);
//! # Ok::<(), simphony_onn::OnnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod error;
mod gemm;
mod layer;
pub mod models;
mod prune;
mod quant;
mod rng;
mod tensor;
mod workload;

pub use convert::{apply_weight_noise, convert_model, ConvertedLayer, NoiseConfig, OnnModel};
pub use error::{OnnError, Result};
pub use gemm::{
    lower_attention, lower_conv2d, lower_feed_forward, lower_linear, GemmShape, LoweredGemm,
};
pub use layer::{AttentionSpec, Conv2dSpec, LayerKind, LayerSpec, LinearSpec, NamedLayer};
pub use models::{Model, ModelInput};
pub use prune::{magnitude_prune, PruningConfig};
pub use quant::{quantize_symmetric, QuantConfig};
pub use rng::SplitMix64;
pub use tensor::Tensor;
pub use workload::{LayerWorkload, ModelWorkload, WeightEncoding};

#[cfg(test)]
mod proptests {
    //! Property tests over seeded-random inputs. The original version used the
    //! `proptest` crate; the offline build environment cannot fetch it, so the
    //! same invariants are checked across a deterministic sample drawn from
    //! [`SplitMix64`].

    use super::*;

    fn sample(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
        lo + (rng.next_u64() as usize) % (hi - lo)
    }

    /// GEMM operand/output counts are consistent with the MAC count.
    #[test]
    fn gemm_macs_are_consistent() {
        let mut rng = SplitMix64::new(0x6E33);
        for _ in 0..256 {
            let (m, k, n) = (
                sample(&mut rng, 1, 64),
                sample(&mut rng, 1, 64),
                sample(&mut rng, 1, 64),
            );
            let b = sample(&mut rng, 1, 4);
            let g = GemmShape::new(m, k, n).with_batch(b);
            assert_eq!(g.macs(), g.operand_a_elements() * n as u64);
            assert_eq!(g.macs(), g.operand_b_elements() * m as u64);
            assert_eq!(g.output_elements() * k as u64, g.macs());
        }
    }

    /// Quantised values stay on the representable grid and within range.
    #[test]
    fn quantisation_stays_in_range() {
        let mut rng = SplitMix64::new(0x9A4B7);
        for _ in 0..256 {
            let value = (rng.next_signed() * 2.0) as f32;
            let bits = sample(&mut rng, 2, 10) as u8;
            let q = quantize_symmetric(value, simphony_units::BitWidth::new(bits));
            assert!((-1.0..=1.0).contains(&q), "{q} out of range at {bits} bits");
            let levels = (1u64 << (bits - 1)) as f32;
            let on_grid = (q * levels).round() / levels;
            assert!((q - on_grid).abs() < 1e-6, "{q} off the {bits}-bit grid");
        }
    }

    /// Magnitude pruning hits the requested sparsity within one element.
    #[test]
    fn pruning_hits_target() {
        let mut outer = SplitMix64::new(0xF00D);
        for _ in 0..64 {
            let sparsity = outer.next_f64();
            let len = sample(&mut outer, 1, 500);
            let mut rng = SplitMix64::new(1234);
            let mut values: Vec<f32> = (0..len).map(|_| rng.next_signed() as f32 + 0.001).collect();
            let config = PruningConfig::new(sparsity).expect("valid sparsity");
            magnitude_prune(&mut values, &config);
            let zeros = values.iter().filter(|v| **v == 0.0).count();
            let target = (len as f64 * sparsity).round() as usize;
            assert!(
                zeros.abs_diff(target) <= 1,
                "sparsity {sparsity} len {len}: {zeros} zeros vs target {target}"
            );
        }
    }

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
        assert_send_sync::<Model>();
        assert_send_sync::<ModelWorkload>();
        assert_send_sync::<OnnError>();
    }
}
