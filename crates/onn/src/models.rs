//! Neural-network model descriptions and the model zoo used by the paper's
//! evaluation (VGG-8 on CIFAR-10, BERT-Base on a 224×224 image, plus helpers).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::layer::{AttentionSpec, Conv2dSpec, LayerSpec, LinearSpec, NamedLayer};

/// Input presented to a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelInput {
    /// An image of `channels × height × width`.
    Image {
        /// Colour channels.
        channels: usize,
        /// Height in pixels.
        height: usize,
        /// Width in pixels.
        width: usize,
    },
    /// A token sequence of `seq_len` embeddings of dimension `embed_dim`.
    Tokens {
        /// Number of tokens.
        seq_len: usize,
        /// Embedding dimension.
        embed_dim: usize,
    },
}

impl fmt::Display for ModelInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelInput::Image {
                channels,
                height,
                width,
            } => write!(f, "image {channels}x{height}x{width}"),
            ModelInput::Tokens { seq_len, embed_dim } => {
                write!(f, "{seq_len} tokens x {embed_dim}")
            }
        }
    }
}

/// A digital neural-network model: an ordered list of named layers plus the
/// input it processes.
///
/// # Examples
///
/// ```
/// use simphony_onn::models::{vgg8_cifar10, bert_base};
///
/// assert!(vgg8_cifar10().gemm_layer_count() >= 8);
/// assert_eq!(bert_base(196).name(), "bert_base");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    input: ModelInput,
    layers: Vec<NamedLayer>,
}

impl Model {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>, input: ModelInput) -> Self {
        Self {
            name: name.into(),
            input,
            layers: Vec::new(),
        }
    }

    /// Appends a layer and returns `self` for chaining.
    pub fn with_layer(mut self, layer: NamedLayer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn push_layer(&mut self, layer: NamedLayer) {
        self.layers.push(layer);
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model input.
    pub fn input(&self) -> ModelInput {
        self.input
    }

    /// All layers in execution order.
    pub fn layers(&self) -> &[NamedLayer] {
        &self.layers
    }

    /// Number of layers that lower to GEMM (and therefore run on the PTCs).
    pub fn gemm_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.spec.kind().is_gemm())
            .count()
    }

    /// Total number of weight parameters in GEMM layers.
    pub fn parameter_count(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l.spec {
                LayerSpec::Conv2d(c) => c.weight_count() as u64,
                LayerSpec::Linear(lin) => lin.weight_count() as u64,
                LayerSpec::Attention(a) => (4 * a.embed_dim * a.embed_dim) as u64,
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} layers, {} GEMM layers)",
            self.name,
            self.input,
            self.layers.len(),
            self.gemm_layer_count()
        )
    }
}

/// VGG-8 for CIFAR-10: six convolution stages and two fully-connected layers,
/// the heterogeneous-mapping workload of paper Fig. 11.
pub fn vgg8_cifar10() -> Model {
    let mut model = Model::new(
        "vgg8_cifar10",
        ModelInput::Image {
            channels: 3,
            height: 32,
            width: 32,
        },
    );
    let channel_plan = [
        (3usize, 64usize),
        (64, 128),
        (128, 256),
        (256, 256),
        (256, 512),
        (512, 512),
    ];
    for (index, (cin, cout)) in channel_plan.into_iter().enumerate() {
        model.push_layer(NamedLayer::new(
            format!("conv{}", index + 1),
            LayerSpec::Conv2d(Conv2dSpec::new(cin, cout, 3)),
        ));
        model.push_layer(NamedLayer::new(
            format!("relu{}", index + 1),
            LayerSpec::Activation,
        ));
        // Pool after every other convolution to shrink 32x32 down to 4x4.
        if index % 2 == 1 {
            model.push_layer(NamedLayer::new(
                format!("pool{}", index / 2 + 1),
                LayerSpec::Pooling,
            ));
        }
    }
    model.push_layer(NamedLayer::new(
        "fc1",
        LayerSpec::Linear(LinearSpec::new(512 * 4 * 4, 1024)),
    ));
    model.push_layer(NamedLayer::new("relu_fc1", LayerSpec::Activation));
    model.push_layer(NamedLayer::new(
        "fc2",
        LayerSpec::Linear(LinearSpec::new(1024, 10)),
    ));
    model
}

/// BERT-Base sized transformer encoder processing `seq_len` tokens
/// (the paper evaluates a single 224×224 ImageNet image, i.e. 196 patch tokens
/// plus a class token; pass `196` or `197`).
///
/// 12 encoder blocks, embedding dimension 768, 12 heads, feed-forward 3072.
pub fn bert_base(seq_len: usize) -> Model {
    transformer_encoder("bert_base", 12, 768, 12, 3072, seq_len)
}

/// A parametric transformer encoder stack.
pub fn transformer_encoder(
    name: &str,
    blocks: usize,
    embed_dim: usize,
    heads: usize,
    ffn_dim: usize,
    seq_len: usize,
) -> Model {
    let mut model = Model::new(name, ModelInput::Tokens { seq_len, embed_dim });
    for b in 0..blocks {
        model.push_layer(NamedLayer::new(
            format!("block{b}_ln1"),
            LayerSpec::Normalization,
        ));
        model.push_layer(NamedLayer::new(
            format!("block{b}_attn"),
            LayerSpec::Attention(AttentionSpec::new(embed_dim, heads, seq_len)),
        ));
        model.push_layer(NamedLayer::new(
            format!("block{b}_ln2"),
            LayerSpec::Normalization,
        ));
        model.push_layer(NamedLayer::new(
            format!("block{b}_ffn_up"),
            LayerSpec::Linear(LinearSpec::new(embed_dim, ffn_dim)),
        ));
        model.push_layer(NamedLayer::new(
            format!("block{b}_gelu"),
            LayerSpec::Activation,
        ));
        model.push_layer(NamedLayer::new(
            format!("block{b}_ffn_down"),
            LayerSpec::Linear(LinearSpec::new(ffn_dim, embed_dim)),
        ));
    }
    model
}

/// A single-GEMM "model" used for the paper's (280×28)×(28×280) validation
/// workload: operand A is a 280×28 weight matrix, operand B a 28×280
/// activation matrix.
pub fn single_gemm(m: usize, k: usize, n: usize) -> Model {
    Model::new(
        format!("gemm_{m}x{k}x{n}"),
        ModelInput::Tokens {
            seq_len: n,
            embed_dim: k,
        },
    )
    .with_layer(NamedLayer::new(
        "gemm",
        LayerSpec::Linear(LinearSpec::new(k, m)),
    ))
}

/// A small multi-layer perceptron, handy for quickstart examples.
pub fn mlp(name: &str, dims: &[usize]) -> Model {
    let mut model = Model::new(
        name,
        ModelInput::Tokens {
            seq_len: 1,
            embed_dim: dims.first().copied().unwrap_or(1),
        },
    );
    for (index, pair) in dims.windows(2).enumerate() {
        model.push_layer(NamedLayer::new(
            format!("fc{}", index + 1),
            LayerSpec::Linear(LinearSpec::new(pair[0], pair[1])),
        ));
        if index + 2 < dims.len() {
            model.push_layer(NamedLayer::new(
                format!("relu{}", index + 1),
                LayerSpec::Activation,
            ));
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn vgg8_has_six_convs_and_two_fcs() {
        let model = vgg8_cifar10();
        let convs = model
            .layers()
            .iter()
            .filter(|l| l.spec.kind() == LayerKind::Conv2d)
            .count();
        let fcs = model
            .layers()
            .iter()
            .filter(|l| l.spec.kind() == LayerKind::Linear)
            .count();
        assert_eq!(convs, 6);
        assert_eq!(fcs, 2);
        assert_eq!(model.gemm_layer_count(), 8);
    }

    #[test]
    fn bert_base_parameter_count_is_in_the_right_ballpark() {
        let model = bert_base(196);
        // Encoder-only parameters (no embeddings): ~85M.
        let params = model.parameter_count();
        assert!(params > 70_000_000 && params < 100_000_000, "{params}");
    }

    #[test]
    fn single_gemm_model_describes_the_validation_workload() {
        let model = single_gemm(280, 28, 280);
        assert_eq!(model.gemm_layer_count(), 1);
        match model.input() {
            ModelInput::Tokens { seq_len, embed_dim } => {
                assert_eq!(seq_len, 280);
                assert_eq!(embed_dim, 28);
            }
            other => panic!("unexpected input {other:?}"),
        }
    }

    #[test]
    fn mlp_builder_alternates_linear_and_activation() {
        let model = mlp("tiny", &[784, 256, 10]);
        assert_eq!(model.gemm_layer_count(), 2);
        assert_eq!(model.layers().len(), 3);
    }

    #[test]
    fn display_summarises_the_model() {
        let text = vgg8_cifar10().to_string();
        assert!(text.contains("vgg8_cifar10"));
        assert!(text.contains("GEMM"));
    }
}
