//! Magnitude pruning of weight tensors.
//!
//! Pruned weights are power-gated on the accelerator (the SCATTER co-sparsity
//! use case of Fig. 10b), so the simulator needs pruning masks that match the
//! sparsity the model was trained with.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{OnnError, Result};

/// Pruning settings applied during ONN conversion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningConfig {
    sparsity: f64,
}

impl PruningConfig {
    /// Creates a pruning configuration targeting the given weight sparsity.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::InvalidFraction`] when `sparsity` is outside `[0, 1]`.
    pub fn new(sparsity: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&sparsity) || !sparsity.is_finite() {
            return Err(OnnError::InvalidFraction {
                context: "sparsity",
                value: sparsity,
            });
        }
        Ok(Self { sparsity })
    }

    /// No pruning.
    pub fn dense() -> Self {
        Self { sparsity: 0.0 }
    }

    /// The targeted fraction of zero weights.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self::dense()
    }
}

impl fmt::Display for PruningConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}% sparse", self.sparsity * 100.0)
    }
}

/// Zeroes the smallest-magnitude entries of `values` until the requested
/// fraction is zero. Returns the number of entries pruned by this call.
///
/// # Examples
///
/// ```
/// use simphony_onn::{magnitude_prune, PruningConfig};
///
/// let mut w = vec![0.9, -0.05, 0.4, 0.01];
/// let pruned = magnitude_prune(&mut w, &PruningConfig::new(0.5)?);
/// assert_eq!(pruned, 2);
/// assert_eq!(w, vec![0.9, 0.0, 0.4, 0.0]);
/// # Ok::<(), simphony_onn::OnnError>(())
/// ```
pub fn magnitude_prune(values: &mut [f32], config: &PruningConfig) -> usize {
    let target_zeros = (values.len() as f64 * config.sparsity()).round() as usize;
    let already_zero = values.iter().filter(|v| **v == 0.0).count();
    if target_zeros <= already_zero {
        return 0;
    }
    let to_prune = target_zeros - already_zero;
    // Find the magnitude threshold below which entries are dropped.
    let mut magnitudes: Vec<(usize, f32)> = values
        .iter()
        .enumerate()
        .filter(|(_, v)| **v != 0.0)
        .map(|(i, v)| (i, v.abs()))
        .collect();
    magnitudes.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite magnitudes"));
    let mut pruned = 0;
    for (index, _) in magnitudes.into_iter().take(to_prune) {
        values[index] = 0.0;
        pruned += 1;
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn pruning_reaches_requested_sparsity() {
        let mut rng = SplitMix64::new(3);
        let mut values: Vec<f32> = (0..1000).map(|_| rng.next_signed() as f32).collect();
        let config = PruningConfig::new(0.7).unwrap();
        magnitude_prune(&mut values, &config);
        let zeros = values.iter().filter(|v| **v == 0.0).count();
        assert_eq!(zeros, 700);
    }

    #[test]
    fn pruning_removes_the_smallest_magnitudes_first() {
        let mut values = vec![1.0, -0.9, 0.1, -0.2, 0.5];
        magnitude_prune(&mut values, &PruningConfig::new(0.4).unwrap());
        assert_eq!(values, vec![1.0, -0.9, 0.0, 0.0, 0.5]);
    }

    #[test]
    fn dense_config_is_a_no_op() {
        let mut values = vec![0.3, -0.4];
        assert_eq!(magnitude_prune(&mut values, &PruningConfig::dense()), 0);
        assert_eq!(values, vec![0.3, -0.4]);
    }

    #[test]
    fn existing_zeros_count_toward_the_target() {
        let mut values = vec![0.0, 0.0, 0.5, -0.6];
        let pruned = magnitude_prune(&mut values, &PruningConfig::new(0.5).unwrap());
        assert_eq!(pruned, 0);
    }

    #[test]
    fn invalid_sparsity_is_rejected() {
        assert!(PruningConfig::new(-0.1).is_err());
        assert!(PruningConfig::new(1.1).is_err());
        assert!(PruningConfig::new(f64::NAN).is_err());
    }
}
