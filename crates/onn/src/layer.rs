//! Neural-network layer descriptions.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{OnnError, Result};

/// Coarse classification of a layer, used for mapping decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d,
    /// Fully-connected layer.
    Linear,
    /// Multi-head self-attention block.
    Attention,
    /// Element-wise activation (offloaded to electronics).
    Activation,
    /// Pooling (offloaded to electronics).
    Pooling,
    /// Normalisation (offloaded to electronics).
    Normalization,
}

impl LayerKind {
    /// Number of layer kinds, for dense per-kind tables indexed by
    /// [`index`](Self::index).
    pub const COUNT: usize = 6;

    /// Dense index in `0..COUNT`, stable in declaration order.
    pub fn index(self) -> usize {
        self as usize
    }

    /// `true` when the layer lowers to GEMM and is therefore mapped onto
    /// photonic tensor cores; everything else is offloaded to the electrical
    /// processor and ignored by the accelerator simulation.
    pub fn is_gemm(self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d | LayerKind::Linear | LayerKind::Attention
        )
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            LayerKind::Conv2d => "Conv2d",
            LayerKind::Linear => "Linear",
            LayerKind::Attention => "Attention",
            LayerKind::Activation => "Activation",
            LayerKind::Pooling => "Pooling",
            LayerKind::Normalization => "Normalization",
        };
        write!(f, "{label}")
    }
}

/// Parameters of a 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a stride-1, same-ish padding convolution.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: kernel / 2,
        }
    }

    /// Sets the stride.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the padding.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Output spatial size for a given input spatial size.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::InvalidLayer`] when the kernel does not fit the
    /// padded input or the stride is zero.
    pub fn output_size(&self, input_hw: (usize, usize)) -> Result<(usize, usize)> {
        if self.stride == 0 || self.kernel == 0 {
            return Err(OnnError::InvalidLayer {
                name: "conv2d".into(),
                reason: "kernel and stride must be positive".into(),
            });
        }
        let (h, w) = input_hw;
        let padded_h = h + 2 * self.padding;
        let padded_w = w + 2 * self.padding;
        if padded_h < self.kernel || padded_w < self.kernel {
            return Err(OnnError::InvalidLayer {
                name: "conv2d".into(),
                reason: format!(
                    "kernel {} larger than padded input {padded_h}x{padded_w}",
                    self.kernel
                ),
            });
        }
        Ok((
            (padded_h - self.kernel) / self.stride + 1,
            (padded_w - self.kernel) / self.stride + 1,
        ))
    }

    /// Number of weight parameters.
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }
}

/// Parameters of a fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearSpec {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

impl LinearSpec {
    /// Creates a linear layer spec.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        Self {
            in_features,
            out_features,
        }
    }

    /// Number of weight parameters.
    pub fn weight_count(&self) -> usize {
        self.in_features * self.out_features
    }
}

/// Parameters of a multi-head self-attention block (as in BERT/ViT encoders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttentionSpec {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Sequence length the block processes.
    pub seq_len: usize,
}

impl AttentionSpec {
    /// Creates an attention spec.
    pub fn new(embed_dim: usize, num_heads: usize, seq_len: usize) -> Self {
        Self {
            embed_dim,
            num_heads,
            seq_len,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.embed_dim / self.num_heads.max(1)
    }
}

/// A layer description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// 2-D convolution.
    Conv2d(Conv2dSpec),
    /// Fully-connected layer.
    Linear(LinearSpec),
    /// Multi-head self-attention block.
    Attention(AttentionSpec),
    /// Element-wise activation (ReLU/GELU/…), offloaded to electronics.
    Activation,
    /// Pooling layer, offloaded to electronics.
    Pooling,
    /// Normalisation layer, offloaded to electronics.
    Normalization,
}

impl LayerSpec {
    /// The coarse kind of this layer.
    pub fn kind(&self) -> LayerKind {
        match self {
            LayerSpec::Conv2d(_) => LayerKind::Conv2d,
            LayerSpec::Linear(_) => LayerKind::Linear,
            LayerSpec::Attention(_) => LayerKind::Attention,
            LayerSpec::Activation => LayerKind::Activation,
            LayerSpec::Pooling => LayerKind::Pooling,
            LayerSpec::Normalization => LayerKind::Normalization,
        }
    }
}

/// A layer together with its name inside a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedLayer {
    /// Layer name, unique within its model.
    pub name: String,
    /// The layer parameters.
    pub spec: LayerSpec,
}

impl NamedLayer {
    /// Creates a named layer.
    pub fn new(name: impl Into<String>, spec: LayerSpec) -> Self {
        Self {
            name: name.into(),
            spec,
        }
    }
}

impl fmt::Display for NamedLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.spec.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_size_matches_formula() {
        let conv = Conv2dSpec::new(3, 64, 3);
        assert_eq!(conv.output_size((32, 32)).unwrap(), (32, 32));
        let strided = Conv2dSpec::new(64, 128, 3).with_stride(2);
        assert_eq!(strided.output_size((32, 32)).unwrap(), (16, 16));
        let valid = Conv2dSpec::new(3, 8, 5).with_padding(0);
        assert_eq!(valid.output_size((28, 28)).unwrap(), (24, 24));
    }

    #[test]
    fn conv_rejects_impossible_geometry() {
        let conv = Conv2dSpec::new(3, 8, 7).with_padding(0);
        assert!(conv.output_size((4, 4)).is_err());
        let degenerate = Conv2dSpec {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 0,
            padding: 1,
        };
        assert!(degenerate.output_size((8, 8)).is_err());
    }

    #[test]
    fn weight_counts() {
        assert_eq!(Conv2dSpec::new(3, 64, 3).weight_count(), 1728);
        assert_eq!(LinearSpec::new(512, 10).weight_count(), 5120);
    }

    #[test]
    fn only_gemm_layers_are_mapped() {
        assert!(LayerKind::Conv2d.is_gemm());
        assert!(LayerKind::Attention.is_gemm());
        assert!(!LayerKind::Pooling.is_gemm());
        assert!(!LayerKind::Activation.is_gemm());
    }

    #[test]
    fn attention_head_dim() {
        assert_eq!(AttentionSpec::new(768, 12, 196).head_dim(), 64);
    }
}
