//! Lowering of NN layers to general matrix multiplication (GEMM) workloads.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::Result;
use crate::layer::{AttentionSpec, Conv2dSpec, LinearSpec};

/// Shape of one (possibly batched) GEMM: `C[m×n] = A[m×k] · B[k×n]`, repeated
/// `batch` times with independent operands.
///
/// Operand A is the *stationary/weight-like* operand, operand B the
/// *streaming/activation-like* operand; this matches the paper's "Operand A /
/// Operand B" terminology in the PTC taxonomy (Table I).
///
/// # Examples
///
/// ```
/// use simphony_onn::GemmShape;
///
/// // The paper's validation GEMM: (280×28)×(28×280).
/// let gemm = GemmShape::new(280, 28, 280);
/// assert_eq!(gemm.macs(), 280 * 28 * 280);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Rows of A and C.
    pub m: usize,
    /// Shared inner dimension.
    pub k: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Number of independent GEMMs with this shape (e.g. attention heads).
    pub batch: usize,
}

impl GemmShape {
    /// Creates an unbatched GEMM shape.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n, batch: 1 }
    }

    /// Sets the batch count.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64 * self.batch as u64
    }

    /// Elements of operand A (weights / stationary operand).
    pub fn operand_a_elements(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.batch as u64
    }

    /// Elements of operand B (activations / streaming operand).
    pub fn operand_b_elements(&self) -> u64 {
        self.k as u64 * self.n as u64 * self.batch as u64
    }

    /// Elements of the output matrix C.
    pub fn output_elements(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.batch as u64
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.batch > 1 {
            write!(
                f,
                "{}x[{}x{}]·[{}x{}]",
                self.batch, self.m, self.k, self.k, self.n
            )
        } else {
            write!(f, "[{}x{}]·[{}x{}]", self.m, self.k, self.k, self.n)
        }
    }
}

/// One GEMM produced by lowering a layer, with a flag for whether *both*
/// operands are produced at run time (dynamic·dynamic products such as the
/// attention score matrix, which weight-stationary PTCs cannot execute).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredGemm {
    /// Label of the sub-computation (e.g. `qkv_proj`, `attn_scores`).
    pub label: String,
    /// The GEMM shape.
    pub shape: GemmShape,
    /// `true` when both operands are activations (dynamic tensor product).
    pub dynamic: bool,
}

/// Lowers a convolution to GEMM via im2col.
///
/// `M = out_channels`, `K = in_channels · k²`, `N = out_h · out_w`.
///
/// # Errors
///
/// Propagates geometry errors from [`Conv2dSpec::output_size`].
pub fn lower_conv2d(spec: &Conv2dSpec, input_hw: (usize, usize)) -> Result<LoweredGemm> {
    let (oh, ow) = spec.output_size(input_hw)?;
    Ok(LoweredGemm {
        label: "im2col_conv".to_string(),
        shape: GemmShape::new(
            spec.out_channels,
            spec.in_channels * spec.kernel * spec.kernel,
            oh * ow,
        ),
        dynamic: false,
    })
}

/// Lowers a linear layer applied to `tokens` activations to GEMM.
///
/// `M = out_features`, `K = in_features`, `N = tokens`.
pub fn lower_linear(spec: &LinearSpec, tokens: usize) -> LoweredGemm {
    LoweredGemm {
        label: "linear".to_string(),
        shape: GemmShape::new(spec.out_features, spec.in_features, tokens.max(1)),
        dynamic: false,
    }
}

/// Lowers a multi-head self-attention block to its constituent GEMMs.
///
/// Produces, in execution order: the fused QKV projection, the per-head
/// attention score product `Q·Kᵀ` (dynamic), the per-head context product
/// `A·V` (dynamic) and the output projection.
pub fn lower_attention(spec: &AttentionSpec) -> Vec<LoweredGemm> {
    let d = spec.embed_dim;
    let s = spec.seq_len;
    let heads = spec.num_heads.max(1);
    let hd = spec.head_dim();
    vec![
        LoweredGemm {
            label: "qkv_proj".to_string(),
            shape: GemmShape::new(3 * d, d, s),
            dynamic: false,
        },
        LoweredGemm {
            label: "attn_scores".to_string(),
            shape: GemmShape::new(s, hd, s).with_batch(heads),
            dynamic: true,
        },
        LoweredGemm {
            label: "attn_context".to_string(),
            shape: GemmShape::new(s, s, hd).with_batch(heads),
            dynamic: true,
        },
        LoweredGemm {
            label: "out_proj".to_string(),
            shape: GemmShape::new(d, d, s),
            dynamic: false,
        },
    ]
}

/// Lowers a transformer feed-forward block (two linear layers) to GEMMs.
pub fn lower_feed_forward(embed_dim: usize, hidden_dim: usize, tokens: usize) -> Vec<LoweredGemm> {
    vec![
        LoweredGemm {
            label: "ffn_up".to_string(),
            shape: GemmShape::new(hidden_dim, embed_dim, tokens),
            dynamic: false,
        },
        LoweredGemm {
            label: "ffn_down".to_string(),
            shape: GemmShape::new(embed_dim, hidden_dim, tokens),
            dynamic: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_lowering_matches_im2col_formula() {
        let conv = Conv2dSpec::new(3, 64, 3);
        let g = lower_conv2d(&conv, (32, 32)).unwrap();
        assert_eq!(g.shape, GemmShape::new(64, 27, 1024));
        assert!(!g.dynamic);
    }

    #[test]
    fn linear_lowering() {
        let g = lower_linear(&LinearSpec::new(512, 10), 1);
        assert_eq!(g.shape, GemmShape::new(10, 512, 1));
    }

    #[test]
    fn attention_lowering_produces_dynamic_products() {
        let spec = AttentionSpec::new(768, 12, 196);
        let gemms = lower_attention(&spec);
        assert_eq!(gemms.len(), 4);
        let dynamic: Vec<_> = gemms.iter().filter(|g| g.dynamic).collect();
        assert_eq!(dynamic.len(), 2);
        let scores = &gemms[1];
        assert_eq!(scores.shape, GemmShape::new(196, 64, 196).with_batch(12));
    }

    #[test]
    fn attention_macs_match_closed_form() {
        let spec = AttentionSpec::new(768, 12, 196);
        let total: u64 = lower_attention(&spec).iter().map(|g| g.shape.macs()).sum();
        let d = 768u64;
        let s = 196u64;
        let expected = 3 * d * d * s + 2 * s * s * d + d * d * s;
        assert_eq!(total, expected);
    }

    #[test]
    fn operand_element_counts() {
        let g = GemmShape::new(280, 28, 280);
        assert_eq!(g.operand_a_elements(), 280 * 28);
        assert_eq!(g.operand_b_elements(), 28 * 280);
        assert_eq!(g.output_elements(), 280 * 280);
    }

    #[test]
    fn batched_display_mentions_batch() {
        let text = GemmShape::new(8, 4, 8).with_batch(12).to_string();
        assert!(text.starts_with("12x"));
    }
}
