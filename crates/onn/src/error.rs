//! Error type for the ONN model substrate.

use std::fmt;

/// Convenience alias for results whose error is [`OnnError`].
pub type Result<T> = std::result::Result<T, OnnError>;

/// Error returned by tensor operations, model construction and workload extraction.
///
/// # Examples
///
/// ```
/// use simphony_onn::{OnnError, Tensor};
///
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[4, 5]);
/// assert!(matches!(a.matmul(&b), Err(OnnError::ShapeMismatch { .. })));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum OnnError {
    /// Two tensors have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the two shapes.
        details: String,
    },
    /// A tensor index was out of bounds.
    IndexOutOfBounds {
        /// The flattened index.
        index: usize,
        /// The number of elements.
        len: usize,
    },
    /// A layer was configured with impossible parameters.
    InvalidLayer {
        /// The layer name.
        name: String,
        /// Explanation.
        reason: String,
    },
    /// A model has no layers that map to GEMM workloads.
    EmptyWorkload {
        /// The model name.
        model: String,
    },
    /// A sparsity or probability parameter was outside `[0, 1]`.
    InvalidFraction {
        /// What the fraction configures.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for OnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnnError::ShapeMismatch { details } => write!(f, "shape mismatch: {details}"),
            OnnError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for tensor of {len} elements"
                )
            }
            OnnError::InvalidLayer { name, reason } => {
                write!(f, "invalid layer `{name}`: {reason}")
            }
            OnnError::EmptyWorkload { model } => {
                write!(f, "model `{model}` produced no GEMM workloads")
            }
            OnnError::InvalidFraction { context, value } => {
                write!(f, "{context} must be within [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for OnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = OnnError::InvalidFraction {
            context: "sparsity",
            value: 1.5,
        };
        assert!(err.to_string().contains("sparsity"));
        assert!(err.to_string().contains("1.5"));
    }
}
