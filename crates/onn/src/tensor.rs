//! A minimal dense tensor, sufficient for workload extraction and small
//! functional checks of converted ONN layers.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{OnnError, Result};
use crate::rng::SplitMix64;

/// A dense row-major `f32` tensor.
///
/// This is deliberately a small fraction of what a training framework offers:
/// SimPhony consumes *workload descriptions*, so the tensor type only needs
/// shapes, deterministic synthetic initialisation, element access and a
/// reference matmul to sanity-check GEMM lowering.
///
/// # Examples
///
/// ```
/// use simphony_onn::Tensor;
///
/// let a = Tensor::random_normal(&[2, 3], 1);
/// let b = Tensor::random_normal(&[3, 4], 2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c.shape(), &[2, 4]);
/// # Ok::<(), simphony_onn::OnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor with approximately normal entries from a deterministic seed.
    pub fn random_normal(shape: &[usize], seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..len).map(|_| rng.next_gaussian() as f32 * 0.5).collect(),
        }
    }

    /// Creates a tensor with uniform entries in `[-1, 1)` from a deterministic seed.
    pub fn random_uniform(shape: &[usize], seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..len).map(|_| rng.next_signed() as f32).collect(),
        }
    }

    /// Creates a tensor from explicit data.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::ShapeMismatch`] when the data length does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let len: usize = shape.iter().product();
        if data.len() != len {
            return Err(OnnError::ShapeMismatch {
                details: format!("shape {shape:?} needs {len} values, got {}", data.len()),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying values in row-major order.
    pub fn values(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at a flattened index.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::IndexOutOfBounds`] when the index exceeds the length.
    pub fn get(&self, index: usize) -> Result<f32> {
        self.data
            .get(index)
            .copied()
            .ok_or(OnnError::IndexOutOfBounds {
                index,
                len: self.data.len(),
            })
    }

    /// Largest absolute value, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
    }

    /// Mean of absolute values, or 0 for an empty tensor.
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|v| v.abs()).sum::<f32>() / self.data.len() as f32
    }

    /// Fraction of exactly-zero entries.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|v| **v == 0.0).count() as f64 / self.data.len() as f64
    }

    /// Reference 2-D matrix multiplication: `self (m×k) · rhs (k×n)`.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::ShapeMismatch`] unless both tensors are 2-D with a
    /// shared inner dimension.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.shape.len() != 2 || rhs.shape.len() != 2 || self.shape[1] != rhs.shape[0] {
            return Err(OnnError::ShapeMismatch {
                details: format!("cannot multiply {:?} by {:?}", self.shape, rhs.shape),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = rhs.shape[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += a * rhs.data[p * n + j];
                }
            }
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Element-wise ReLU, returning a new tensor.
    pub fn relu(&self) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v.max(0.0)).collect(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tensor{:?} ({} values)", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.values(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_checks() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
        let c = Tensor::zeros(&[2, 3, 4]);
        assert!(c.matmul(&a).is_err());
    }

    #[test]
    fn random_tensors_are_deterministic_per_seed() {
        let a = Tensor::random_normal(&[4, 4], 11);
        let b = Tensor::random_normal(&[4, 4], 11);
        let c = Tensor::random_normal(&[4, 4], 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn statistics_helpers() {
        let t = Tensor::from_vec(&[4], vec![0.0, -2.0, 1.0, 0.0]).unwrap();
        assert_eq!(t.max_abs(), 2.0);
        assert!((t.mean_abs() - 0.75).abs() < 1e-6);
        assert!((t.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(&[3], vec![-1.0, 0.5, 2.0]).unwrap();
        assert_eq!(t.relu().values(), &[0.0, 0.5, 2.0]);
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0]).is_err());
    }

    #[test]
    fn out_of_bounds_get_is_an_error() {
        let t = Tensor::zeros(&[2]);
        assert!(t.get(1).is_ok());
        assert!(matches!(t.get(2), Err(OnnError::IndexOutOfBounds { .. })));
    }
}
