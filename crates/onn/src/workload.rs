//! Workload extraction: turning a (converted) model into the per-layer GEMM
//! descriptions the architecture simulator consumes.

use serde::{Deserialize, Serialize};
use std::fmt;

use simphony_units::{BitWidth, DataSize};

use crate::error::{OnnError, Result};
use crate::gemm::{lower_attention, lower_conv2d, lower_linear, GemmShape, LoweredGemm};
use crate::layer::{LayerKind, LayerSpec};
use crate::models::{Model, ModelInput};
use crate::prune::{magnitude_prune, PruningConfig};
use crate::quant::{quantize_symmetric, QuantConfig};
use crate::rng::SplitMix64;

/// Maximum number of weight values sampled per layer for data-aware power
/// modeling. Energies are scaled by the true element count, so the cap only
/// bounds memory, not the simulated workload size.
const VALUE_SAMPLE_CAP: usize = 8192;

/// How operand-A values are expressed for value-aware power modeling.
///
/// The paper supports several "modes" — raw matrix values, normalised device
/// transmissions, phase shifts or control voltages — because different PTCs
/// encode weights in different physical quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightEncoding {
    /// Plain matrix values in `[-1, 1]`.
    MatrixValue,
    /// Normalised optical transmission in `[0, 1]`.
    Transmission,
    /// Phase shift normalised to π (in `[0, 1]`).
    PhaseShift,
    /// Drive voltage normalised to the full-scale swing.
    Voltage,
}

impl fmt::Display for WeightEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            WeightEncoding::MatrixValue => "matrix value",
            WeightEncoding::Transmission => "transmission",
            WeightEncoding::PhaseShift => "phase shift",
            WeightEncoding::Voltage => "voltage",
        };
        write!(f, "{label}")
    }
}

/// One GEMM workload extracted from a model layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    name: String,
    kind: LayerKind,
    label: String,
    gemm: GemmShape,
    dynamic: bool,
    weight_bits: BitWidth,
    input_bits: BitWidth,
    output_bits: BitWidth,
    sparsity: f64,
    weight_values: Vec<f32>,
    normalized_abs: Vec<f64>,
    weight_elements: u64,
}

impl LayerWorkload {
    /// Layer name (plus sub-GEMM label for attention blocks).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The originating layer kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Label of the sub-computation (`im2col_conv`, `attn_scores`, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The GEMM shape.
    pub fn gemm(&self) -> GemmShape {
        self.gemm
    }

    /// `true` when both operands are produced at run time (needs a dynamic PTC).
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// Weight (operand A) precision.
    pub fn weight_bits(&self) -> BitWidth {
        self.weight_bits
    }

    /// Input (operand B) precision.
    pub fn input_bits(&self) -> BitWidth {
        self.input_bits
    }

    /// Output precision.
    pub fn output_bits(&self) -> BitWidth {
        self.output_bits
    }

    /// Measured fraction of zero weights after pruning and quantisation.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }

    /// Sampled operand-A values (quantised, pruned, in `[-1, 1]`).
    pub fn weight_values(&self) -> &[f32] {
        &self.weight_values
    }

    /// True number of operand-A elements (the samples are a subset).
    pub fn weight_elements(&self) -> u64 {
        self.weight_elements
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.gemm.macs()
    }

    /// Storage footprint of operand A at its precision.
    pub fn weight_size(&self) -> DataSize {
        self.weight_bits
            .size_of(self.gemm.operand_a_elements() as usize)
    }

    /// Storage footprint of operand B at its precision.
    pub fn input_size(&self) -> DataSize {
        self.input_bits
            .size_of(self.gemm.operand_b_elements() as usize)
    }

    /// Storage footprint of the output at its precision.
    pub fn output_size(&self) -> DataSize {
        self.output_bits
            .size_of(self.gemm.output_elements() as usize)
    }

    /// Total data footprint (A + B + output).
    pub fn total_size(&self) -> DataSize {
        self.weight_size() + self.input_size() + self.output_size()
    }

    /// Sampled operand-A magnitudes normalised to `[0, 1]`, the quantity
    /// value-aware device power models consume. Precomputed at extraction
    /// time, so repeated energy evaluations of the same workload allocate
    /// nothing.
    pub fn normalized_abs_values(&self) -> &[f64] {
        &self.normalized_abs
    }
}

impl fmt::Display for LayerWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {} ({} MACs, {:.0}% sparse{})",
            self.name,
            self.label,
            self.gemm,
            self.macs(),
            self.sparsity * 100.0,
            if self.dynamic { ", dynamic" } else { "" }
        )
    }
}

/// The complete GEMM workload of a model.
///
/// # Examples
///
/// ```
/// use simphony_onn::{ModelWorkload, PruningConfig, QuantConfig};
/// use simphony_onn::models::vgg8_cifar10;
///
/// let workload = ModelWorkload::extract(
///     &vgg8_cifar10(),
///     &QuantConfig::default(),
///     &PruningConfig::dense(),
///     42,
/// )?;
/// assert_eq!(workload.layers().len(), 8);
/// assert!(workload.total_macs() > 100_000_000);
/// # Ok::<(), simphony_onn::OnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWorkload {
    model_name: String,
    layers: Vec<LayerWorkload>,
}

impl ModelWorkload {
    /// Extracts the GEMM workload of `model` under the given quantisation and
    /// pruning settings. `seed` controls the deterministic synthetic weights.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::EmptyWorkload`] when the model contains no GEMM
    /// layers, and propagates layer-geometry errors.
    pub fn extract(
        model: &Model,
        quant: &QuantConfig,
        prune: &PruningConfig,
        seed: u64,
    ) -> Result<Self> {
        let mut layers = Vec::new();
        // Track the activation geometry as layers are traversed.
        let mut image_hw: Option<(usize, usize)> = None;
        let mut tokens = 1usize;
        match model.input() {
            ModelInput::Image { height, width, .. } => image_hw = Some((height, width)),
            ModelInput::Tokens { seq_len, .. } => tokens = seq_len,
        }
        for (layer_index, layer) in model.layers().iter().enumerate() {
            let lowered: Vec<LoweredGemm> = match &layer.spec {
                LayerSpec::Conv2d(conv) => {
                    let hw = image_hw.unwrap_or((1, 1));
                    let gemm = lower_conv2d(conv, hw)?;
                    image_hw = Some(conv.output_size(hw)?);
                    vec![gemm]
                }
                LayerSpec::Linear(linear) => {
                    let effective_tokens = if image_hw.is_some() { 1 } else { tokens };
                    vec![lower_linear(linear, effective_tokens)]
                }
                LayerSpec::Attention(attn) => lower_attention(attn),
                LayerSpec::Pooling => {
                    if let Some((h, w)) = image_hw {
                        image_hw = Some(((h / 2).max(1), (w / 2).max(1)));
                    }
                    continue;
                }
                LayerSpec::Activation | LayerSpec::Normalization => continue,
            };
            for (sub_index, gemm) in lowered.into_iter().enumerate() {
                let layer_seed = seed
                    .wrapping_add(layer_index as u64 * 1013)
                    .wrapping_add(sub_index as u64 * 7919);
                layers.push(build_layer_workload(
                    layer.name.clone(),
                    layer.spec.kind(),
                    gemm,
                    quant,
                    prune,
                    layer_seed,
                ));
            }
        }
        if layers.is_empty() {
            return Err(OnnError::EmptyWorkload {
                model: model.name().to_string(),
            });
        }
        Ok(Self {
            model_name: model.name().to_string(),
            layers,
        })
    }

    /// The model the workload was extracted from.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Per-layer workloads in execution order.
    pub fn layers(&self) -> &[LayerWorkload] {
        &self.layers
    }

    /// Total multiply-accumulate operations across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerWorkload::macs).sum()
    }

    /// Total operand-A footprint across layers.
    pub fn total_weight_size(&self) -> DataSize {
        self.layers.iter().map(LayerWorkload::weight_size).sum()
    }

    /// Footprint of the largest single layer (A + B + output), which sizes the
    /// global buffer in the paper's memory model.
    pub fn max_layer_size(&self) -> DataSize {
        self.layers
            .iter()
            .map(LayerWorkload::total_size)
            .fold(DataSize::ZERO, DataSize::max)
    }

    /// Fraction of layers whose GEMM is a dynamic·dynamic product.
    pub fn dynamic_fraction(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().filter(|l| l.is_dynamic()).count() as f64 / self.layers.len() as f64
    }
}

impl fmt::Display for ModelWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload of {}: {} GEMMs, {:.2} GMACs",
            self.model_name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

fn build_layer_workload(
    name: String,
    kind: LayerKind,
    gemm: LoweredGemm,
    quant: &QuantConfig,
    prune: &PruningConfig,
    seed: u64,
) -> LayerWorkload {
    let true_elements = gemm.shape.operand_a_elements();
    let sample_count = (true_elements as usize).min(VALUE_SAMPLE_CAP);
    let mut rng = SplitMix64::new(seed);
    let mut values: Vec<f32> = (0..sample_count)
        .map(|_| quantize_symmetric(rng.next_gaussian() as f32 * 0.5, quant.weight_bits()))
        .collect();
    magnitude_prune(&mut values, prune);
    let sparsity = if values.is_empty() {
        0.0
    } else {
        values.iter().filter(|v| **v == 0.0).count() as f64 / values.len() as f64
    };
    let label = gemm.label.clone();
    let name = if label == "im2col_conv" || label == "linear" {
        name
    } else {
        format!("{name}.{label}")
    };
    let normalized_abs = values.iter().map(|v| f64::from(v.abs()).min(1.0)).collect();
    LayerWorkload {
        name,
        kind,
        label,
        gemm: gemm.shape,
        dynamic: gemm.dynamic,
        weight_bits: quant.weight_bits(),
        input_bits: quant.input_bits(),
        output_bits: quant.output_bits(),
        sparsity,
        weight_values: values,
        normalized_abs,
        weight_elements: true_elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{bert_base, single_gemm, vgg8_cifar10};

    fn dense_workload(model: &Model) -> ModelWorkload {
        ModelWorkload::extract(model, &QuantConfig::default(), &PruningConfig::dense(), 7)
            .expect("extraction succeeds")
    }

    #[test]
    fn vgg8_produces_one_gemm_per_conv_and_fc() {
        let workload = dense_workload(&vgg8_cifar10());
        assert_eq!(workload.layers().len(), 8);
        assert!(workload.layers().iter().all(|l| !l.is_dynamic()));
    }

    #[test]
    fn vgg8_spatial_tracking_matches_pooling() {
        let workload = dense_workload(&vgg8_cifar10());
        // conv1 and conv2 see 32x32, conv3/conv4 16x16, conv5/conv6 8x8.
        let ns: Vec<usize> = workload.layers().iter().map(|l| l.gemm().n).collect();
        assert_eq!(ns[0], 32 * 32);
        assert_eq!(ns[2], 16 * 16);
        assert_eq!(ns[4], 8 * 8);
        // FC layers process a single flattened token.
        assert_eq!(ns[6], 1);
    }

    #[test]
    fn bert_base_has_six_gemms_per_block() {
        let workload = dense_workload(&bert_base(196));
        // 12 blocks x (qkv, scores, context, out_proj, ffn_up, ffn_down).
        assert_eq!(workload.layers().len(), 12 * 6);
        assert!(workload.dynamic_fraction() > 0.3);
        // BERT-Base forward pass on 196 tokens is ~22 GMACs.
        let gmacs = workload.total_macs() as f64 / 1e9;
        assert!(gmacs > 15.0 && gmacs < 30.0, "{gmacs} GMACs");
    }

    #[test]
    fn validation_gemm_sizes_match_the_paper_setting() {
        let workload = dense_workload(&single_gemm(280, 28, 280));
        let layer = &workload.layers()[0];
        assert_eq!(layer.gemm(), GemmShape::new(280, 28, 280));
        assert_eq!(layer.weight_size().bytes(), (280 * 28) as f64);
        assert_eq!(layer.macs(), 280 * 28 * 280);
    }

    #[test]
    fn pruning_is_reflected_in_sparsity_and_values() {
        let model = single_gemm(64, 64, 64);
        let sparse = ModelWorkload::extract(
            &model,
            &QuantConfig::default(),
            &PruningConfig::new(0.6).expect("valid"),
            7,
        )
        .expect("extraction succeeds");
        let layer = &sparse.layers()[0];
        assert!((layer.sparsity() - 0.6).abs() < 0.02);
        let zeros = layer.weight_values().iter().filter(|v| **v == 0.0).count();
        assert!(zeros as f64 / layer.weight_values().len() as f64 > 0.55);
    }

    #[test]
    fn extraction_is_deterministic_for_the_same_seed() {
        let model = vgg8_cifar10();
        let a = dense_workload(&model);
        let b = dense_workload(&model);
        assert_eq!(a, b);
    }

    #[test]
    fn value_samples_are_capped_but_true_count_is_kept() {
        let workload = dense_workload(&bert_base(196));
        let qkv = &workload.layers()[0];
        assert!(qkv.weight_values().len() <= VALUE_SAMPLE_CAP);
        assert_eq!(qkv.weight_elements(), (3 * 768 * 768) as u64);
    }

    #[test]
    fn model_without_gemm_layers_is_an_error() {
        let model = Model::new(
            "only_pool",
            ModelInput::Image {
                channels: 3,
                height: 8,
                width: 8,
            },
        )
        .with_layer(crate::layer::NamedLayer::new("pool", LayerSpec::Pooling));
        assert!(matches!(
            ModelWorkload::extract(&model, &QuantConfig::default(), &PruningConfig::dense(), 1),
            Err(OnnError::EmptyWorkload { .. })
        ));
    }

    #[test]
    fn normalized_values_are_in_unit_range() {
        let workload = dense_workload(&vgg8_cifar10());
        for layer in workload.layers() {
            assert!(layer
                .normalized_abs_values()
                .iter()
                .all(|v| (0.0..=1.0).contains(v)));
        }
    }
}
