//! Layer latency analysis.
//!
//! Implements the paper's latency model
//! `τ_tot = τ_load + τ_write + I · (τ_comp + τ_reconfig)`:
//! operand loading and output write-back are bounded by the global-buffer
//! bandwidth, computation by the blocking of the GEMM, full-range iterations
//! multiply the analog work, and weight-stationary PTCs pay a reconfiguration
//! penalty whenever reprogramming exceeds one clock cycle.

use serde::{Deserialize, Serialize};
use std::fmt;

use simphony_arch::PtcArchitecture;
use simphony_onn::LayerWorkload;
use simphony_units::{Bandwidth, Time};

use crate::error::{DataflowError, Result};
use crate::mapping::GemmMapping;

/// Cycle-level latency breakdown of one layer on one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Cycles spent loading operands A and B from the global buffer.
    pub load_cycles: u64,
    /// Cycles spent writing results back.
    pub writeback_cycles: u64,
    /// Cycles of analog computation for one full-range iteration.
    pub compute_cycles: u64,
    /// Cycles of stationary-operand reconfiguration for one iteration.
    pub reconfig_cycles: u64,
    /// Number of full-range iterations (`I`).
    pub iterations: u64,
}

impl LatencyBreakdown {
    /// Total cycles: `load + write + I·(compute + reconfig)`.
    pub fn total_cycles(&self) -> u64 {
        self.load_cycles
            + self.writeback_cycles
            + self.iterations * (self.compute_cycles + self.reconfig_cycles)
    }

    /// Wall-clock time of the layer at the given clock.
    pub fn total_time(&self, clock: simphony_units::Frequency) -> Time {
        clock.period() * self.total_cycles() as f64
    }

    /// Fraction of total cycles spent on analog computation.
    pub fn compute_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        (self.iterations * self.compute_cycles) as f64 / total as f64
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles (load {}, write {}, {}x compute {}, {}x reconfig {})",
            self.total_cycles(),
            self.load_cycles,
            self.writeback_cycles,
            self.iterations,
            self.compute_cycles,
            self.iterations,
            self.reconfig_cycles
        )
    }
}

/// Computes the latency breakdown of one layer.
///
/// `glb_bandwidth` is the bandwidth the (multi-block) global buffer delivers to
/// the sub-architecture; loading and write-back are modelled as streaming the
/// operand footprints at that rate.
///
/// # Errors
///
/// Returns [`DataflowError::InvalidInput`] when the bandwidth is not positive.
pub fn layer_latency(
    workload: &LayerWorkload,
    arch: &PtcArchitecture,
    mapping: &GemmMapping,
    glb_bandwidth: Bandwidth,
) -> Result<LatencyBreakdown> {
    if glb_bandwidth.bits_per_second() <= 0.0 {
        return Err(DataflowError::InvalidInput {
            reason: "global-buffer bandwidth must be positive".into(),
        });
    }
    let clock = arch.clock();
    let cycles_for = |bits: f64| -> u64 {
        let seconds = bits / glb_bandwidth.bits_per_second();
        Time::from_seconds(seconds).cycles_at(clock)
    };
    let load_bits = workload.weight_size().bits() + workload.input_size().bits();
    let writeback_bits = workload.output_size().bits();
    let reconfig_cycles = if arch.taxonomy().is_weight_stationary() {
        mapping.weight_switches() * arch.reconfig_cycle_penalty()
    } else {
        0
    };
    Ok(LatencyBreakdown {
        load_cycles: cycles_for(load_bits),
        writeback_cycles: cycles_for(writeback_bits),
        compute_cycles: mapping.compute_cycles(),
        reconfig_cycles,
        iterations: arch.full_range_iterations() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_gemm, DataflowStyle};
    use simphony_arch::generators;
    use simphony_netlist::ArchParams;
    use simphony_onn::{models, ModelWorkload, PruningConfig, QuantConfig};

    fn validation_layer() -> LayerWorkload {
        ModelWorkload::extract(
            &models::single_gemm(280, 28, 280),
            &QuantConfig::default(),
            &PruningConfig::dense(),
            1,
        )
        .expect("extraction succeeds")
        .layers()[0]
            .clone()
    }

    fn glb_bw() -> Bandwidth {
        Bandwidth::from_gigabytes_per_second(256.0)
    }

    #[test]
    fn latency_formula_combines_components() {
        let arch = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let layer = validation_layer();
        let mapping =
            map_gemm(layer.gemm(), false, &arch, DataflowStyle::OutputStationary).unwrap();
        let lat = layer_latency(&layer, &arch, &mapping, glb_bw()).unwrap();
        assert_eq!(lat.iterations, 1);
        assert_eq!(lat.compute_cycles, mapping.compute_cycles());
        assert_eq!(
            lat.total_cycles(),
            lat.load_cycles + lat.writeback_cycles + lat.compute_cycles
        );
        assert!(
            lat.compute_fraction() > 0.5,
            "compute should dominate this GEMM"
        );
    }

    #[test]
    fn pcm_pays_four_iterations() {
        let arch = generators::pcm_crossbar(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let layer = validation_layer();
        let mapping =
            map_gemm(layer.gemm(), false, &arch, DataflowStyle::WeightStationary).unwrap();
        let lat = layer_latency(&layer, &arch, &mapping, glb_bw()).unwrap();
        assert_eq!(lat.iterations, 4);
        assert!(lat.reconfig_cycles > 0, "PCM writes exceed one cycle");
    }

    #[test]
    fn thermo_optic_meshes_are_dominated_by_reconfiguration() {
        let mesh = generators::mzi_mesh(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let layer = validation_layer();
        let mapping =
            map_gemm(layer.gemm(), false, &mesh, DataflowStyle::WeightStationary).unwrap();
        let lat = layer_latency(&layer, &mesh, &mapping, glb_bw()).unwrap();
        assert!(
            lat.reconfig_cycles > 100 * lat.compute_cycles,
            "10 us thermal tuning should dwarf computation"
        );
    }

    #[test]
    fn dynamic_tempo_has_no_reconfig_cycles() {
        let arch = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let layer = validation_layer();
        let mapping =
            map_gemm(layer.gemm(), false, &arch, DataflowStyle::OutputStationary).unwrap();
        let lat = layer_latency(&layer, &arch, &mapping, glb_bw()).unwrap();
        assert_eq!(lat.reconfig_cycles, 0);
    }

    #[test]
    fn zero_bandwidth_is_rejected() {
        let arch = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let layer = validation_layer();
        let mapping =
            map_gemm(layer.gemm(), false, &arch, DataflowStyle::OutputStationary).unwrap();
        assert!(layer_latency(
            &layer,
            &arch,
            &mapping,
            Bandwidth::from_bits_per_second(0.0)
        )
        .is_err());
    }

    #[test]
    fn total_time_uses_the_clock_period() {
        let arch = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let layer = validation_layer();
        let mapping =
            map_gemm(layer.gemm(), false, &arch, DataflowStyle::OutputStationary).unwrap();
        let lat = layer_latency(&layer, &arch, &mapping, glb_bw()).unwrap();
        let time = lat.total_time(arch.clock());
        assert!((time.nanoseconds() - lat.total_cycles() as f64 * 0.2).abs() < 1e-6);
    }
}
