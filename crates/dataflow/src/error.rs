//! Error type for dataflow mapping.

use std::fmt;

/// Convenience alias for results whose error is [`DataflowError`].
pub type Result<T> = std::result::Result<T, DataflowError>;

/// Error returned by dataflow mapping and latency analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum DataflowError {
    /// A workload cannot be mapped to the given architecture.
    Unmappable {
        /// Name of the workload layer.
        layer: String,
        /// Why the mapping is impossible.
        reason: String,
    },
    /// A bandwidth or frequency input was non-positive.
    InvalidInput {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Unmappable { layer, reason } => {
                write!(f, "layer `{layer}` cannot be mapped: {reason}")
            }
            DataflowError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for DataflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DataflowError::Unmappable {
            layer: "attn_scores".into(),
            reason: "dynamic product on a weight-stationary PTC".into(),
        };
        assert!(err.to_string().contains("attn_scores"));
        assert!(err.to_string().contains("weight-stationary"));
    }
}
