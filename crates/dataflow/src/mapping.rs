//! Blocking-GEMM mapping onto a photonic tensor architecture.
//!
//! The mapping follows the paper's Fig. 4: the output matrix is partitioned
//! into `H × W` blocks computed by the dot-product nodes of one core, the
//! reduction (K) dimension is covered jointly by the `C` cores of a tile
//! (photocurrent partial sums) and the `λ` wavelengths (spectral partial sums),
//! remaining K chunks are integrated temporally and accumulated digitally, and
//! the `R` tiles process different output blocks in parallel.

use serde::{Deserialize, Serialize};
use std::fmt;

use simphony_arch::PtcArchitecture;
use simphony_onn::GemmShape;

use crate::error::{DataflowError, Result};

/// Classical GEMM dataflow styles. Photonic multi-dimensional parallelism and
/// hierarchical accumulation apply on top of whichever style is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataflowStyle {
    /// Outputs stay resident while operands stream (the TeMPO-style default).
    OutputStationary,
    /// Weights stay resident (required by slowly reconfigured PTCs).
    WeightStationary,
    /// Inputs stay resident.
    InputStationary,
}

impl fmt::Display for DataflowStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            DataflowStyle::OutputStationary => "output-stationary",
            DataflowStyle::WeightStationary => "weight-stationary",
            DataflowStyle::InputStationary => "input-stationary",
        };
        write!(f, "{label}")
    }
}

/// The result of mapping one GEMM onto an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmMapping {
    gemm: GemmShape,
    dataflow: DataflowStyle,
    m_blocks: u64,
    n_blocks: u64,
    k_steps: u64,
    tile_rounds: u64,
    compute_cycles: u64,
    weight_switches: u64,
    spatial_utilization: f64,
}

impl GemmMapping {
    /// The mapped GEMM.
    pub fn gemm(&self) -> GemmShape {
        self.gemm
    }

    /// The dataflow style used.
    pub fn dataflow(&self) -> DataflowStyle {
        self.dataflow
    }

    /// Number of output-row blocks (`⌈M / H⌉`).
    pub fn m_blocks(&self) -> u64 {
        self.m_blocks
    }

    /// Number of output-column blocks (`⌈N / W⌉`).
    pub fn n_blocks(&self) -> u64 {
        self.n_blocks
    }

    /// Number of reduction steps (`⌈K / (C·λ)⌉`), i.e. temporal/digital
    /// accumulation depth after analog and spectral summation.
    pub fn k_steps(&self) -> u64 {
        self.k_steps
    }

    /// Rounds needed to distribute all output blocks over the `R` tiles.
    pub fn tile_rounds(&self) -> u64 {
        self.tile_rounds
    }

    /// Clock cycles of pure computation (one full-range iteration).
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// How many times the stationary operand must be rewritten.
    pub fn weight_switches(&self) -> u64 {
        self.weight_switches
    }

    /// Fraction of the architecture's MAC capacity the mapping keeps busy.
    pub fn spatial_utilization(&self) -> f64 {
        self.spatial_utilization
    }
}

impl fmt::Display for GemmMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} mapped {} as {}x{}x{} blocks, {} cycles, {:.0}% utilised",
            self.gemm,
            self.dataflow,
            self.m_blocks,
            self.n_blocks,
            self.k_steps,
            self.compute_cycles,
            self.spatial_utilization * 100.0
        )
    }
}

/// Maps a (possibly batched) GEMM onto the architecture with the given dataflow.
///
/// # Errors
///
/// Returns [`DataflowError::Unmappable`] when a dynamic·dynamic product (e.g.
/// an attention score matrix) is mapped onto a PTC whose stationary operand
/// cannot be reconfigured at the clock rate.
pub fn map_gemm(
    gemm: GemmShape,
    dynamic_product: bool,
    arch: &PtcArchitecture,
    dataflow: DataflowStyle,
) -> Result<GemmMapping> {
    if dynamic_product && !arch.taxonomy().supports_dynamic_products() {
        return Err(DataflowError::Unmappable {
            layer: format!("{gemm}"),
            reason: format!(
                "dynamic tensor product requires dynamic operand reconfiguration, but {} is weight-stationary",
                arch.name()
            ),
        });
    }
    let params = arch.params();
    let h = params.core_height() as u64;
    let w = params.core_width() as u64;
    let r = params.tiles() as u64;
    let reduction_parallelism = (params.cores_per_tile() * params.wavelengths()) as u64;

    let m_blocks = (gemm.m as u64).div_ceil(h);
    let n_blocks = (gemm.n as u64).div_ceil(w);
    let k_steps = (gemm.k as u64).div_ceil(reduction_parallelism);
    let output_blocks = m_blocks * n_blocks;
    let tile_rounds = output_blocks.div_ceil(r);
    let compute_cycles = tile_rounds * k_steps * gemm.batch as u64;

    // With an output-stationary loop order a stationary-operand block is
    // rewritten once per (m block, k step); reuse across the N dimension comes
    // for free. Weight- and input-stationary orders have the same switch count
    // for operand A, they only change which operand streams.
    let weight_switches = m_blocks * k_steps * gemm.batch as u64;

    let ideal_cycles = gemm.macs() as f64 / arch.macs_per_cycle() as f64;
    let spatial_utilization = (ideal_cycles / compute_cycles as f64).clamp(0.0, 1.0);

    Ok(GemmMapping {
        gemm,
        dataflow,
        m_blocks,
        n_blocks,
        k_steps,
        tile_rounds,
        compute_cycles,
        weight_switches,
        spatial_utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simphony_arch::generators;
    use simphony_netlist::ArchParams;

    fn tempo_2244() -> PtcArchitecture {
        generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).expect("valid architecture")
    }

    #[test]
    fn validation_gemm_mapping_matches_hand_count() {
        // (280x28)x(28x280) on 2 tiles x 2 cores of 4x4, single wavelength.
        let mapping = map_gemm(
            GemmShape::new(280, 28, 280),
            false,
            &tempo_2244(),
            DataflowStyle::OutputStationary,
        )
        .unwrap();
        assert_eq!(mapping.m_blocks(), 70);
        assert_eq!(mapping.n_blocks(), 70);
        assert_eq!(mapping.k_steps(), 14);
        assert_eq!(mapping.tile_rounds(), (70 * 70u64).div_ceil(2));
        assert_eq!(mapping.compute_cycles(), 2450 * 14);
    }

    #[test]
    fn wavelengths_shorten_the_reduction() {
        let gemm = GemmShape::new(280, 28, 280);
        let base = map_gemm(gemm, false, &tempo_2244(), DataflowStyle::OutputStationary).unwrap();
        let wdm_arch = generators::tempo(ArchParams::new(2, 2, 4, 4).with_wavelengths(7), 5.0)
            .expect("valid architecture");
        let wdm = map_gemm(gemm, false, &wdm_arch, DataflowStyle::OutputStationary).unwrap();
        assert!(wdm.compute_cycles() < base.compute_cycles());
        assert_eq!(wdm.k_steps(), 2); // ceil(28 / (2*7))
    }

    #[test]
    fn utilization_is_perfect_for_exactly_fitting_gemms() {
        let arch = tempo_2244();
        // M = 2*4, N = 4, K = 2 exactly fills R*H x W with K = C.
        let mapping = map_gemm(
            GemmShape::new(8, 2, 4),
            false,
            &arch,
            DataflowStyle::OutputStationary,
        )
        .unwrap();
        assert!((mapping.spatial_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn small_gemms_underutilise_the_array() {
        let mapping = map_gemm(
            GemmShape::new(2, 2, 2),
            false,
            &tempo_2244(),
            DataflowStyle::OutputStationary,
        )
        .unwrap();
        assert!(mapping.spatial_utilization() < 0.2);
        assert_eq!(mapping.compute_cycles(), 1);
    }

    #[test]
    fn dynamic_products_require_dynamic_ptcs() {
        let mesh = generators::mzi_mesh(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let err = map_gemm(
            GemmShape::new(196, 64, 196).with_batch(12),
            true,
            &mesh,
            DataflowStyle::WeightStationary,
        );
        assert!(matches!(err, Err(DataflowError::Unmappable { .. })));
        assert!(map_gemm(
            GemmShape::new(196, 64, 196).with_batch(12),
            true,
            &tempo_2244(),
            DataflowStyle::OutputStationary,
        )
        .is_ok());
    }

    #[test]
    fn batched_gemms_scale_cycles_linearly() {
        let single = map_gemm(
            GemmShape::new(64, 64, 64),
            false,
            &tempo_2244(),
            DataflowStyle::OutputStationary,
        )
        .unwrap();
        let batched = map_gemm(
            GemmShape::new(64, 64, 64).with_batch(12),
            false,
            &tempo_2244(),
            DataflowStyle::OutputStationary,
        )
        .unwrap();
        assert_eq!(batched.compute_cycles(), 12 * single.compute_cycles());
    }
}
