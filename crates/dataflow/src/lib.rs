//! Photonics-specific dataflow mapping and latency/traffic analysis.
//!
//! Photonic accelerators add physical dimensions beyond the spatial and
//! temporal parallelism of electrical hardware: wavelengths for spectral
//! partial sums, analog photocurrent accumulation across cores, and temporal
//! integration before digital accumulation. This crate maps blocked GEMMs onto
//! a [`PtcArchitecture`](simphony_arch::PtcArchitecture) with that hierarchy
//! ([`map_gemm`]), derives cycle-accurate-ish latency with full-range-iteration
//! and reconfiguration penalties ([`layer_latency`]), and produces the
//! per-memory-level traffic and bandwidth demands the energy and memory
//! analyzers consume ([`memory_traffic`], [`glb_bandwidth_demand`]).
//!
//! # Examples
//!
//! ```
//! use simphony_dataflow::{map_gemm, DataflowStyle};
//! use simphony_arch::generators;
//! use simphony_netlist::ArchParams;
//! use simphony_onn::GemmShape;
//!
//! let tempo = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0)?;
//! let mapping = map_gemm(GemmShape::new(280, 28, 280), false, &tempo, DataflowStyle::OutputStationary)?;
//! assert!(mapping.compute_cycles() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod latency;
mod mapping;
mod traffic;

pub use error::{DataflowError, Result};
pub use latency::{layer_latency, LatencyBreakdown};
pub use mapping::{map_gemm, DataflowStyle, GemmMapping};
pub use traffic::{core_bandwidth_demand, glb_bandwidth_demand, memory_traffic, MemoryTraffic};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use simphony_arch::generators;
    use simphony_netlist::ArchParams;
    use simphony_onn::GemmShape;

    proptest! {
        /// The mapping always provides enough compute cycles to cover every MAC.
        #[test]
        fn mapping_covers_all_macs(
            m in 1usize..512, k in 1usize..256, n in 1usize..512,
            tiles in 1usize..4, cores in 1usize..4, hw in 1usize..12, lambda in 1usize..8,
        ) {
            let arch = generators::tempo(
                ArchParams::new(tiles, cores, hw, hw).with_wavelengths(lambda),
                5.0,
            ).expect("valid architecture");
            let mapping = map_gemm(
                GemmShape::new(m, k, n),
                false,
                &arch,
                DataflowStyle::OutputStationary,
            ).expect("mappable");
            let capacity = mapping.compute_cycles() as u128 * arch.macs_per_cycle() as u128;
            prop_assert!(capacity >= GemmShape::new(m, k, n).macs() as u128);
            prop_assert!(mapping.spatial_utilization() > 0.0 && mapping.spatial_utilization() <= 1.0);
        }

        /// Larger architectures never need more compute cycles for the same GEMM.
        #[test]
        fn bigger_arrays_are_never_slower(m in 8usize..256, k in 8usize..128, n in 8usize..256) {
            let small = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).expect("valid");
            let large = generators::tempo(ArchParams::new(2, 2, 8, 8), 5.0).expect("valid");
            let gemm = GemmShape::new(m, k, n);
            let cs = map_gemm(gemm, false, &small, DataflowStyle::OutputStationary).expect("mappable");
            let cl = map_gemm(gemm, false, &large, DataflowStyle::OutputStationary).expect("mappable");
            prop_assert!(cl.compute_cycles() <= cs.compute_cycles());
        }
    }

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GemmMapping>();
        assert_send_sync::<LatencyBreakdown>();
        assert_send_sync::<MemoryTraffic>();
        assert_send_sync::<DataflowError>();
    }
}
