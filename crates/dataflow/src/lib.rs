//! Photonics-specific dataflow mapping and latency/traffic analysis.
//!
//! Photonic accelerators add physical dimensions beyond the spatial and
//! temporal parallelism of electrical hardware: wavelengths for spectral
//! partial sums, analog photocurrent accumulation across cores, and temporal
//! integration before digital accumulation. This crate maps blocked GEMMs onto
//! a [`PtcArchitecture`](simphony_arch::PtcArchitecture) with that hierarchy
//! ([`map_gemm`]), derives cycle-accurate-ish latency with full-range-iteration
//! and reconfiguration penalties ([`layer_latency`]), and produces the
//! per-memory-level traffic and bandwidth demands the energy and memory
//! analyzers consume ([`memory_traffic`], [`glb_bandwidth_demand`]).
//!
//! # Examples
//!
//! ```
//! use simphony_dataflow::{map_gemm, DataflowStyle};
//! use simphony_arch::generators;
//! use simphony_netlist::ArchParams;
//! use simphony_onn::GemmShape;
//!
//! let tempo = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0)?;
//! let mapping = map_gemm(GemmShape::new(280, 28, 280), false, &tempo, DataflowStyle::OutputStationary)?;
//! assert!(mapping.compute_cycles() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod latency;
mod mapping;
mod traffic;

pub use error::{DataflowError, Result};
pub use latency::{layer_latency, LatencyBreakdown};
pub use mapping::{map_gemm, DataflowStyle, GemmMapping};
pub use traffic::{core_bandwidth_demand, glb_bandwidth_demand, memory_traffic, MemoryTraffic};

#[cfg(test)]
mod proptests {
    //! Property tests over seeded-random inputs. The original version used the
    //! `proptest` crate; the offline build environment cannot fetch it, so the
    //! same invariants are checked across a deterministic sample drawn from
    //! the workspace's own [`SplitMix64`] generator.

    use super::*;
    use simphony_arch::generators;
    use simphony_netlist::ArchParams;
    use simphony_onn::{GemmShape, SplitMix64};

    fn sample(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
        lo + (rng.next_u64() as usize) % (hi - lo)
    }

    /// The mapping always provides enough compute cycles to cover every MAC.
    #[test]
    fn mapping_covers_all_macs() {
        let mut rng = SplitMix64::new(0xDA7AF10A);
        for _ in 0..128 {
            let (m, k, n) = (
                sample(&mut rng, 1, 512),
                sample(&mut rng, 1, 256),
                sample(&mut rng, 1, 512),
            );
            let tiles = sample(&mut rng, 1, 4);
            let cores = sample(&mut rng, 1, 4);
            let hw = sample(&mut rng, 1, 12);
            let lambda = sample(&mut rng, 1, 8);
            let arch = generators::tempo(
                ArchParams::new(tiles, cores, hw, hw).with_wavelengths(lambda),
                5.0,
            )
            .expect("valid architecture");
            let mapping = map_gemm(
                GemmShape::new(m, k, n),
                false,
                &arch,
                DataflowStyle::OutputStationary,
            )
            .expect("mappable");
            let capacity = mapping.compute_cycles() as u128 * arch.macs_per_cycle() as u128;
            assert!(
                capacity >= GemmShape::new(m, k, n).macs() as u128,
                "m={m} k={k} n={n} tiles={tiles} cores={cores} hw={hw} lambda={lambda}"
            );
            let util = mapping.spatial_utilization();
            assert!(util > 0.0 && util <= 1.0, "utilization {util} out of range");
        }
    }

    /// Larger architectures never need more compute cycles for the same GEMM.
    #[test]
    fn bigger_arrays_are_never_slower() {
        let small = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).expect("valid");
        let large = generators::tempo(ArchParams::new(2, 2, 8, 8), 5.0).expect("valid");
        let mut rng = SplitMix64::new(0x5EEDED);
        for _ in 0..128 {
            let gemm = GemmShape::new(
                sample(&mut rng, 8, 256),
                sample(&mut rng, 8, 128),
                sample(&mut rng, 8, 256),
            );
            let cs =
                map_gemm(gemm, false, &small, DataflowStyle::OutputStationary).expect("mappable");
            let cl =
                map_gemm(gemm, false, &large, DataflowStyle::OutputStationary).expect("mappable");
            assert!(
                cl.compute_cycles() <= cs.compute_cycles(),
                "{gemm:?}: large {} > small {}",
                cl.compute_cycles(),
                cs.compute_cycles()
            );
        }
    }

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GemmMapping>();
        assert_send_sync::<LatencyBreakdown>();
        assert_send_sync::<MemoryTraffic>();
        assert_send_sync::<DataflowError>();
    }
}
