//! Memory traffic and bandwidth-demand analysis.
//!
//! The energy analyzer needs, per layer, the amount of data moved at each
//! memory level (`E_mem = Σ e_mem · D_mem`); the memory builder needs the
//! per-cycle bandwidth demand the global buffer must sustain.

use serde::{Deserialize, Serialize};
use std::fmt;

use simphony_arch::PtcArchitecture;
use simphony_memsim::MemoryLevel;
use simphony_onn::LayerWorkload;
use simphony_units::{Bandwidth, DataSize};

use crate::mapping::GemmMapping;

/// Data moved at each memory level while executing one layer.
///
/// The model assumes the standard tiling reuse pattern of the Fig. 4 mapping:
///
/// * **HBM** — each operand is fetched once and the output written once
///   (layers fit in the global buffer; latency hiding overlaps the transfer);
/// * **GLB** — operand A is read once, operand B is re-streamed once per
///   output-row block (its reuse lives in the local buffer), the output is
///   written once;
/// * **LB** — refilled from the GLB and read every cycle by the register file;
/// * **RF** — supplies the per-cycle operands consumed by the photonic cores
///   and absorbs every partial-sum write-back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryTraffic {
    hbm: DataSize,
    glb: DataSize,
    lb: DataSize,
    rf: DataSize,
}

impl MemoryTraffic {
    /// Data moved at the given level.
    pub fn at(&self, level: MemoryLevel) -> DataSize {
        match level {
            MemoryLevel::Hbm => self.hbm,
            MemoryLevel::GlobalBuffer => self.glb,
            MemoryLevel::LocalBuffer => self.lb,
            MemoryLevel::RegisterFile => self.rf,
        }
    }

    /// Total data movement across all levels.
    pub fn total(&self) -> DataSize {
        self.hbm + self.glb + self.lb + self.rf
    }
}

impl fmt::Display for MemoryTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HBM {}, GLB {}, LB {}, RF {}",
            self.hbm, self.glb, self.lb, self.rf
        )
    }
}

/// Computes the per-level memory traffic of one mapped layer.
pub fn memory_traffic(workload: &LayerWorkload, mapping: &GemmMapping) -> MemoryTraffic {
    let a = workload.weight_size();
    let b = workload.input_size();
    let out = workload.output_size();
    let hbm = a + b + out;
    // Operand B is re-read from the GLB once per output-row block; operand A and
    // the output move once.
    let glb = a + b * mapping.m_blocks() as f64 + out;
    // The LB is refilled with everything the GLB supplies and feeds the RF once
    // per reduction step it is resident for.
    let lb = glb + (a + b) * 1.0;
    // The RF supplies operands every cycle and absorbs one partial-sum update
    // per output element per reduction step.
    let per_cycle_bits = operand_bits_per_cycle(workload, mapping);
    let rf_reads = DataSize::from_bits(per_cycle_bits * mapping.compute_cycles() as f64);
    let rf_writes = out * mapping.k_steps() as f64;
    MemoryTraffic {
        hbm,
        glb,
        lb,
        rf: rf_reads + rf_writes,
    }
}

/// Operand bits the cores consume per clock cycle (both operands, all tiles).
fn operand_bits_per_cycle(workload: &LayerWorkload, mapping: &GemmMapping) -> f64 {
    let gemm = workload.gemm();
    let a_elements_per_cycle =
        (gemm.m as f64 / mapping.m_blocks() as f64) * (gemm.k as f64 / mapping.k_steps() as f64);
    let b_elements_per_cycle =
        (gemm.k as f64 / mapping.k_steps() as f64) * (gemm.n as f64 / mapping.n_blocks() as f64);
    a_elements_per_cycle * workload.weight_bits().bits() as f64
        + b_elements_per_cycle * workload.input_bits().bits() as f64
}

/// Bandwidth the local buffer / register file must sustain so the cores never
/// stall: `bytes-per-cycle × f`.
pub fn core_bandwidth_demand(
    workload: &LayerWorkload,
    mapping: &GemmMapping,
    arch: &PtcArchitecture,
) -> Bandwidth {
    let bits_per_cycle = operand_bits_per_cycle(workload, mapping);
    Bandwidth::from_bits_per_second(bits_per_cycle * arch.clock().hertz())
}

/// Bandwidth the global buffer must deliver for the layer, following the
/// paper's `BW_GLB = MaxLayerSize · f / (N_p · D_p · M_p)` sizing rule: the
/// whole layer must stream through the GLB within the cycles the partitioned
/// GEMM occupies the cores.
pub fn glb_bandwidth_demand(
    workload: &LayerWorkload,
    mapping: &GemmMapping,
    arch: &PtcArchitecture,
) -> Bandwidth {
    let layer_bits = workload.total_size().bits();
    let cycles = mapping.compute_cycles().max(1) as f64;
    Bandwidth::from_bits_per_second(layer_bits * arch.clock().hertz() / cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_gemm, DataflowStyle};
    use simphony_arch::generators;
    use simphony_netlist::ArchParams;
    use simphony_onn::{models, ModelWorkload, PruningConfig, QuantConfig};

    fn layer_and_mapping() -> (LayerWorkload, GemmMapping, PtcArchitecture) {
        let arch = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let layer = ModelWorkload::extract(
            &models::single_gemm(280, 28, 280),
            &QuantConfig::default(),
            &PruningConfig::dense(),
            1,
        )
        .unwrap()
        .layers()[0]
            .clone();
        let mapping =
            map_gemm(layer.gemm(), false, &arch, DataflowStyle::OutputStationary).unwrap();
        (layer, mapping, arch)
    }

    #[test]
    fn traffic_grows_toward_the_cores() {
        let (layer, mapping, _) = layer_and_mapping();
        let traffic = memory_traffic(&layer, &mapping);
        assert!(traffic.at(MemoryLevel::GlobalBuffer) > traffic.at(MemoryLevel::Hbm));
        assert!(traffic.at(MemoryLevel::RegisterFile) > traffic.at(MemoryLevel::GlobalBuffer));
    }

    #[test]
    fn hbm_traffic_is_exactly_the_layer_footprint() {
        let (layer, mapping, _) = layer_and_mapping();
        let traffic = memory_traffic(&layer, &mapping);
        assert!((traffic.at(MemoryLevel::Hbm).bytes() - layer.total_size().bytes()).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_demands_are_positive_and_ordered() {
        let (layer, mapping, arch) = layer_and_mapping();
        let core_bw = core_bandwidth_demand(&layer, &mapping, &arch);
        let glb_bw = glb_bandwidth_demand(&layer, &mapping, &arch);
        assert!(core_bw.gigabytes_per_second() > 0.0);
        assert!(glb_bw.gigabytes_per_second() > 0.0);
        // The per-cycle operand feed is at least as demanding as streaming the
        // layer once over its compute time.
        assert!(core_bw.gigabytes_per_second() + 1e-9 >= glb_bw.gigabytes_per_second());
    }

    #[test]
    fn wavelength_parallelism_raises_bandwidth_demand() {
        let gemm = simphony_onn::GemmShape::new(280, 28, 280);
        let layer = {
            let (layer, _, _) = layer_and_mapping();
            layer
        };
        let base_arch = generators::tempo(ArchParams::new(2, 2, 4, 4), 5.0).unwrap();
        let wdm_arch =
            generators::tempo(ArchParams::new(2, 2, 4, 4).with_wavelengths(7), 5.0).unwrap();
        let base_map = map_gemm(gemm, false, &base_arch, DataflowStyle::OutputStationary).unwrap();
        let wdm_map = map_gemm(gemm, false, &wdm_arch, DataflowStyle::OutputStationary).unwrap();
        let base_bw = glb_bandwidth_demand(&layer, &base_map, &base_arch);
        let wdm_bw = glb_bandwidth_demand(&layer, &wdm_map, &wdm_arch);
        assert!(
            wdm_bw.gigabytes_per_second() > base_bw.gigabytes_per_second(),
            "faster compute must be fed faster"
        );
    }

    #[test]
    fn total_is_the_sum_of_levels() {
        let (layer, mapping, _) = layer_and_mapping();
        let traffic = memory_traffic(&layer, &mapping);
        let summed: f64 = MemoryLevel::all()
            .iter()
            .map(|&l| traffic.at(l).bits())
            .sum();
        assert!((traffic.total().bits() - summed).abs() < 1e-6);
    }
}
